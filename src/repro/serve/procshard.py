"""Process-level sharded serving over shared-memory geometry.

:class:`~repro.serve.shard.ShardedSolveService` replicates *within* one
process: its replicas' BLAS and large ufuncs release the GIL, but the
pure-Python dispatch path — routing, ticket resolution, stats — still
serializes on it, which caps scaling on many-core hosts.
:class:`ProcessShardedSolveService` lifts that ceiling: ``K`` worker
*processes*, each running a warm in-process
:class:`~repro.serve.service.SolveService` (own GIL, own dispatcher
thread, own workspace pool) over a problem rebuilt from a picklable
:class:`~repro.sem.spec.ProblemSpec`.

The paper's core observation — SEM throughput is bound by how well the
memory system is exploited, not by FLOPs — shapes the design: the big
immutable arrays (``Geometry.g_soa``, the gather-scatter
sort-permutation/segment/multiplicity caches, nodal coordinates,
quadrature arrays, the Jacobi diagonal) are exported **once** into
``multiprocessing.shared_memory`` blocks and attached zero-copy by
every worker.  ``K`` processes, one physical copy of the geometry —
instead of ``K`` rebuilt or pickled duplicates.

Routing reuses the thread-shard's machinery unchanged
(:class:`~repro.serve.scheduler.TenantRouter` /
:class:`~repro.serve.scheduler.LeastLoadedRouter` /
:class:`~repro.serve.scheduler.RoundRobinRouter`, plus the
``queue_watermark`` + ``on_overload`` diversion); requests travel over
per-worker pipes and a parent-side reader bridges replies back into
:class:`~repro.serve.service.SolveTicket`\\ s, so the client API is
identical to the in-process shard's.  Because every worker rebuilds the
*same* problem from the *same* shared arrays and runs the identical CG
path, per-request results are bit-identical to a sequential warm
:func:`~repro.sem.cg.cg_solve` under every routing policy — the same
contract the in-process shard tests.

Guarantees:

* **Drain-on-close.**  ``close()`` closes every worker's queue, waits
  for each to drain and resolve every in-flight ticket, then joins the
  processes and unlinks the shared blocks.  Submits after close raise
  :class:`~repro.serve.scheduler.QueueClosed`.
* **Crash surfacing.**  A worker that dies (killed, OOM, segfault)
  fails its in-flight tickets with :class:`WorkerCrashed` and
  subsequent submits routed to it raise — requests never hang on a
  dead process.
* **Meaningful fleet stats.**  Workers ship
  :class:`~repro.serve.stats.StatsSnapshot`\\ s whose
  ``perf_counter`` stamps are rebased onto the parent's clock at
  transfer time (:func:`~repro.serve.stats.perf_epoch_offset`), so the
  merged ``solves_per_second`` spans the true fleet window.

On a single-core host the fleet cannot beat one service (the benchmark
gate only requires it not to fall far behind — pipes and process
scheduling are paid from one core's budget); on a multi-core host each
worker owns a core *including its Python dispatch*, which is exactly
the scaling the in-process shard could not reach.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.sem.cg import CGResult
from repro.serve.scheduler import (
    QueueClosed,
    Router,
    pick_with_diversion,
    resolve_router,
)
from repro.serve.service import SolveTicket, check_request
from repro.serve.shard import OverloadHook, _UNSET
from repro.serve.stats import (
    StatsSnapshot,
    merge_snapshots,
    perf_epoch_offset,
)


class WorkerCrashed(RuntimeError):
    """A worker process died with requests in flight (or was targeted
    by a submit after dying).  Carries no result — the request was
    lost with the worker; resubmit to a healthy fleet."""


def _sendable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives pickling, else a faithful ``RuntimeError``.

    Ticket failures cross the process boundary by value; an unpicklable
    exception (e.g. one holding a lock or a workspace) must degrade to
    its message, never take down the reply channel.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_info(problem, spec) -> dict:
    """Introspection payload for the parent's ``worker_info`` (tests
    prove the zero-copy sharing through it)."""
    inner = getattr(problem, "problem", problem)
    geo = inner.geometry
    shm = getattr(geo, "_shm", None)
    return {
        "pid": os.getpid(),
        "n_dofs": int(problem.n_dofs),
        "geometry_block": None if shm is None else shm.name,
        "g_soa_writeable": bool(geo.g_soa.flags.writeable),
        "shared_blocks": tuple(spec.shared_blocks),
    }


def _worker_main(spec, conn, service_kwargs: dict) -> None:
    """Worker-process entry point: rebuild, serve, drain, exit.

    Protocol (tuples over the pipe; parent -> worker):
    ``("solve_block", [(req_id, b, tol, maxiter), ...])``,
    ``("stats", token)``, ``("info", token)``, ``("flush", token)``,
    ``("close",)``.  Worker -> parent: ``("ready", pid)`` /
    ``("fatal", exc)`` once at startup, then ``("done_block",
    [(req_id, ok, CGResult | exc), ...])`` blocks of results,
    ``("stats", token, snapshot, clock_offset)``, ``("info", token,
    dict)``, ``("flushed", token)``, and ``("bye",)`` after a graceful
    drain.

    Traffic is deliberately *blocked* in both directions: on a host
    where the solves themselves take fractions of a millisecond, one
    pipe message (pickle + syscall + a cross-process wakeup) per
    request would dominate; grouping requests per worker and sweeping
    finished results into coalesced ``done_block`` messages keeps the
    process boundary off the critical path.
    """
    import queue

    from repro.sem.spec import rebuild
    from repro.serve.service import SolveService

    try:
        problem = rebuild(spec)
        svc = SolveService(problem, background=True, **service_kwargs)
    except BaseException as exc:
        try:
            conn.send(("fatal", _sendable_error(exc)))
        except OSError:
            pass
        conn.close()
        return

    send_lock = threading.Lock()

    def send(msg) -> None:
        # Serialized: the result pump runs beside this loop's control
        # replies, and Connection.send is not thread-safe.  A vanished
        # parent is not an error worth dying loudly for — the worker
        # just finishes draining and exits.
        with send_lock:
            try:
                conn.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                pass

    # Finished results flow through a local queue to a pump thread that
    # sweeps everything available into one done_block per send — while
    # one message is in flight, later completions pile up and ride the
    # next one (opportunistic coalescing, exactly like micro-batching).
    results: "queue.SimpleQueue" = queue.SimpleQueue()

    #: Seconds the pump lingers for the next finished result before
    #: shipping the block: tickets of one stacked solve resolve
    #: microseconds apart, so this tiny linger folds a whole batch into
    #: one pipe message at a sub-millisecond delivery-latency cost.
    pump_linger = 2e-4

    def pump() -> None:
        while True:
            item = results.get()
            block = [item]
            while True:
                try:
                    block.append(results.get(timeout=pump_linger))
                except queue.Empty:
                    break
            stop = any(entry is None for entry in block)
            entries = [entry for entry in block if entry is not None]
            if entries:
                send(("done_block", entries))
            if stop:
                return

    pump_thread = threading.Thread(
        target=pump, name="sem-procshard-pump", daemon=True
    )
    pump_thread.start()

    def report(req_id: int, ticket) -> None:
        exc = ticket.exception()
        if exc is None:
            results.put((req_id, True, ticket.result()))
        else:
            results.put((req_id, False, _sendable_error(exc)))

    send(("ready", os.getpid()))
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # parent died; finally drains and exits
            tag = msg[0]
            if tag == "solve_block":
                block = msg[1]
                try:
                    # Bulk ingest: one queue-lock acquisition and one
                    # dispatcher wake-up for the whole block.  Closure
                    # mid-block is reported through the tickets, so
                    # every req_id gets exactly one reply either way.
                    tickets = svc.submit_block(
                        [(b, tol, mi) for _, b, tol, mi in block]
                    )
                except BaseException as exc:
                    # All-or-nothing failure (validation): nothing was
                    # enqueued; report every item.
                    error = _sendable_error(exc)
                    for req_id, *_ in block:
                        results.put((req_id, False, error))
                else:
                    for (req_id, *_), ticket in zip(block, tickets):
                        ticket.add_done_callback(
                            lambda t, rid=req_id: report(rid, t)
                        )
            elif tag == "stats":
                send(("stats", msg[1], svc.stats, perf_epoch_offset()))
            elif tag == "info":
                send(("info", msg[1], _worker_info(problem, spec)))
            elif tag == "flush":
                svc.flush()
                send(("flushed", msg[1]))
            elif tag == "close":
                # Drain: close() resolves every pending ticket (their
                # callbacks enqueue the remaining results), then the
                # pump flushes and exits before "bye" goes out — the
                # parent's reader can trust bye to mean "nothing in
                # flight".
                svc.close()
                results.put(None)
                pump_thread.join()
                send(("bye",))
                return
    finally:
        try:
            svc.close()
        except Exception:
            pass
        results.put(None)
        pump_thread.join(timeout=5.0)
        conn.close()


class _Reply:
    """Parent-side slot for one worker request/response exchange."""

    __slots__ = ("event", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: tuple = ()
        self.error: BaseException | None = None


class _Worker:
    """Parent-side handle: process, pipe, in-flight bookkeeping."""

    __slots__ = (
        "index", "process", "conn", "send_lock", "state_lock", "seq",
        "pending", "replies", "alive", "close_sent", "reader", "fatal",
    )

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        # send_lock serializes writers on the pipe; state_lock guards
        # the bookkeeping.  They are distinct so the reader thread is
        # never blocked behind a writer stuck on a full pipe (which
        # would deadlock backpressure: the worker unclogs the pipe only
        # if the reader keeps consuming its results).
        self.send_lock = threading.Lock()
        self.state_lock = threading.Lock()
        self.seq = 0
        self.pending: dict[int, SolveTicket] = {}
        self.replies: dict[int, _Reply] = {}
        self.alive = True
        self.close_sent = False
        self.reader: threading.Thread | None = None
        self.fatal: BaseException | None = None


class ProcessShardedSolveService:
    """Route solve requests across ``K`` worker *processes*.

    Parameters
    ----------
    problem:
        A :class:`~repro.sem.poisson.PoissonProblem`,
        :class:`~repro.sem.helmholtz.HelmholtzProblem` or
        :class:`~repro.sem.nekbone.NekboneCase` — anything providing
        the spec protocol (``export_shared()``, ``n_dofs``).  Its
        immutable arrays are exported to shared memory once; every
        worker rebuilds a solve-identical problem attached to the same
        physical pages.  The parent's problem instance itself is *not*
        used to solve — it is the template.
    workers:
        Number of worker processes (``K >= 1``), one per core being the
        intended deployment.
    policy:
        ``"tenant"``, ``"least-loaded"``, ``"round-robin"``, or a ready
        :class:`~repro.serve.scheduler.Router` sized for ``workers`` —
        the same policies, with the same semantics, as the in-process
        :class:`~repro.serve.shard.ShardedSolveService`.
    max_batch / max_wait / max_pending / tol / maxiter / precondition:
        Forwarded to every worker's in-process
        :class:`~repro.serve.service.SolveService`; omitted knobs take
        that dataclass's own defaults (the ``_UNSET`` pattern shared
        with the thread-shard, so there is exactly one set of
        defaults).
    queue_watermark / on_overload:
        Watermark diversion, as in the thread-shard.  Depths here count
        *in-flight* requests per worker (submitted, not yet resolved) —
        the parent cannot cheaply observe a worker's internal queue, and
        in-flight is the quantity backpressure actually acts on.
    start_method:
        ``multiprocessing`` start method (default ``"spawn"``: workers
        import fresh and attach the shared blocks explicitly, proving
        zero-copy sharing rather than inheriting pages by fork
        accident; ``"fork"``/``"forkserver"`` also work).

    Thread safety
    -------------
    :meth:`submit` / :meth:`solve_many` / :attr:`stats` / :meth:`close`
    are safe from any number of client threads.  Backpressure is
    end-to-end: a worker at ``max_pending`` stops reading its pipe, the
    pipe fills, and the submitting client blocks in ``send``.

    Examples
    --------
    >>> svc = ProcessShardedSolveService(problem, workers=2)
    >>> ticket = svc.submit(b, key="tenant-42")   # doctest: +SKIP
    >>> svc.close()
    """

    #: Seconds to wait for a worker's startup handshake (spawn imports
    #: numpy + this library from scratch).
    HANDSHAKE_TIMEOUT: float = 120.0
    #: Seconds to wait for a stats/info/flush reply.
    REPLY_TIMEOUT: float = 60.0
    #: Seconds to wait for a worker to drain and exit on close before
    #: it is terminated forcefully.
    JOIN_TIMEOUT: float = 60.0

    def __init__(
        self,
        problem: object,
        workers: int = 2,
        policy: "str | Router" = "tenant",
        max_batch: "int | object" = _UNSET,
        max_wait: "float | object" = _UNSET,
        max_pending: "int | None | object" = _UNSET,
        tol: "float | object" = _UNSET,
        maxiter: "int | object" = _UNSET,
        precondition: "bool | object" = _UNSET,
        queue_watermark: int | None = None,
        on_overload: OverloadHook | None = None,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_watermark is not None and queue_watermark < 1:
            raise ValueError(
                f"queue_watermark must be >= 1, got {queue_watermark}"
            )
        if not hasattr(problem, "export_shared"):
            raise TypeError(
                f"problem {type(problem).__name__} lacks export_shared(); "
                "process sharding rebuilds workers from a shared-memory "
                "spec (PoissonProblem, HelmholtzProblem and NekboneCase "
                "all provide it)"
            )
        self.workers = workers
        self.policy = (
            policy if isinstance(policy, str) else type(policy).__name__
        )
        self.queue_watermark = queue_watermark
        self.on_overload = on_overload
        self._router = resolve_router(policy, workers)
        self._least_loaded = resolve_router("least-loaded", workers)
        self._lock = threading.Lock()
        self._routed = [0] * workers
        self._rebalanced = 0
        self._closed = False
        self._torn_down = False
        self._n = int(problem.n_dofs)
        # One set of service defaults: SolveService's own (see
        # ShardedSolveService, which this mirrors knob for knob).
        self._forwarded = {
            name: value
            for name, value in (
                ("max_batch", max_batch), ("max_wait", max_wait),
                ("max_pending", max_pending), ("tol", tol),
                ("maxiter", maxiter), ("precondition", precondition),
            )
            if value is not _UNSET
        }
        # Validate the forwarded knobs parent-side with SolveService's
        # own constructor (the single source of validation truth): a
        # bad max_batch must raise here as a plain ValueError, not as a
        # worker-startup failure relayed across a process boundary.
        from repro.serve.service import SolveService

        SolveService(problem, background=False, **self._forwarded).close()
        self._export = problem.export_shared()
        self._workers: tuple[_Worker, ...] = ()
        ctx = multiprocessing.get_context(start_method)
        started: list[_Worker] = []
        try:
            for index in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(self._export.spec, child_conn, self._forwarded),
                    name=f"sem-procshard-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                started.append(_Worker(index, process, parent_conn))
            for w in started:
                self._handshake(w)
            for w in started:
                w.reader = threading.Thread(
                    target=self._reader_loop, args=(w,),
                    name=f"sem-procshard-reader-{w.index}", daemon=True,
                )
                w.reader.start()
        except BaseException:
            for w in started:
                if w.process.is_alive():
                    w.process.terminate()
                w.process.join(timeout=5.0)
                w.conn.close()
            self._export.close(unlink=True)
            raise
        self._workers = tuple(started)

    # ------------------------------------------------------------------
    # Construction / teardown plumbing
    # ------------------------------------------------------------------
    def _handshake(self, w: _Worker) -> None:
        """Consume the worker's startup message or fail construction."""
        if not w.conn.poll(self.HANDSHAKE_TIMEOUT):
            raise RuntimeError(
                f"worker {w.index} did not report ready within "
                f"{self.HANDSHAKE_TIMEOUT:.0f}s"
            )
        try:
            msg = w.conn.recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"worker {w.index} exited during startup"
            ) from exc
        if msg[0] == "fatal":
            raise RuntimeError(
                f"worker {w.index} failed to build its service"
            ) from msg[1]
        if msg[0] != "ready":
            raise RuntimeError(
                f"worker {w.index} sent unexpected startup message "
                f"{msg[0]!r}"
            )

    def _reader_loop(self, w: _Worker) -> None:
        """Drain one worker's pipe, resolving tickets and replies.

        Exits on ``bye`` (graceful) or EOF (crash / parent-initiated
        teardown); either way every ticket and reply still registered
        is failed, so no client ever hangs on a dead worker.
        """
        try:
            while True:
                try:
                    msg = w.conn.recv()
                except (EOFError, OSError):
                    break
                tag = msg[0]
                if tag == "done_block":
                    for req_id, ok, payload in msg[1]:
                        with w.state_lock:
                            ticket = w.pending.pop(req_id, None)
                        if ticket is not None:
                            if ok:
                                ticket._resolve(payload)
                            else:
                                ticket._fail(payload)
                elif tag in ("stats", "info", "flushed"):
                    with w.state_lock:
                        reply = w.replies.pop(msg[1], None)
                    if reply is not None:
                        reply.payload = msg[2:]
                        reply.event.set()
                elif tag == "bye":
                    break
        finally:
            with w.state_lock:
                w.alive = False
                pending = list(w.pending.values())
                w.pending.clear()
                replies = list(w.replies.values())
                w.replies.clear()
            if pending or replies:
                error = WorkerCrashed(
                    f"worker {w.index} (pid {w.process.pid}) exited with "
                    f"{len(pending)} request(s) in flight"
                )
                for ticket in pending:
                    ticket._fail(error)
                for reply in replies:
                    reply.error = error
                    reply.event.set()

    def _request(self, w: _Worker, tag: str) -> tuple:
        """One control round-trip (stats/info/flush) with a worker."""
        reply = _Reply()
        with w.send_lock:
            with w.state_lock:
                if not w.alive:
                    raise WorkerCrashed(
                        f"worker {w.index} is not alive"
                    )
                token = w.seq
                w.seq += 1
                w.replies[token] = reply
            try:
                w.conn.send((tag, token))
            except (OSError, ValueError) as exc:
                with w.state_lock:
                    w.replies.pop(token, None)
                raise WorkerCrashed(
                    f"worker {w.index} pipe is closed"
                ) from exc
        if not reply.event.wait(self.REPLY_TIMEOUT):
            with w.state_lock:
                w.replies.pop(token, None)
            raise TimeoutError(
                f"worker {w.index} did not answer {tag!r} within "
                f"{self.REPLY_TIMEOUT:.0f}s"
            )
        if reply.error is not None:
            raise reply.error
        return reply.payload

    # ------------------------------------------------------------------
    # Routing / dispatch plumbing
    # ------------------------------------------------------------------
    def _validate_request(
        self, b, tol, maxiter
    ) -> tuple[NDArray[np.float64], "float | None", "int | None"]:
        """Snapshot + validate one request parent-side (bad requests
        must bounce before crossing the process boundary).  ``None``
        knobs pass through for the worker's service to resolve; the
        checks themselves are :func:`repro.serve.service.check_request`
        — the same single source of truth the workers apply."""
        return check_request(self._n, b, tol, maxiter)

    def _route(self, key, depths: tuple[int, ...]) -> int:
        """Pick (and possibly watermark-divert) the worker for one
        request, given the depths the decision should see — the shared
        :func:`~repro.serve.scheduler.pick_with_diversion` step."""
        chosen, rebalanced = pick_with_diversion(
            self._router, self._least_loaded, key, depths,
            self.queue_watermark, self.on_overload, noun="worker",
        )
        if rebalanced:
            with self._lock:
                self._rebalanced += 1
        return chosen

    def _dispatch_block(
        self, chosen: int, items: list
    ) -> list[SolveTicket]:
        """Send ``[(b, tol, maxiter), ...]`` to one worker as a single
        pipe message; returns one registered ticket per item."""
        w = self._workers[chosen]
        tickets: list[SolveTicket] = []
        with w.send_lock:
            payload = []
            with w.state_lock:
                if w.close_sent:
                    # close() already won this worker's send_lock: the
                    # worker will drain and exit without reading another
                    # message, so admitting the block would strand its
                    # tickets until EOF mislabels them WorkerCrashed.
                    raise QueueClosed(
                        "submit on a closed process-sharded service"
                    )
                if not w.alive:
                    raise WorkerCrashed(
                        f"worker {chosen} has died; its requests were "
                        "failed and it accepts no new ones"
                    )
                for b, tol, maxiter in items:
                    req_id = w.seq
                    w.seq += 1
                    ticket = SolveTicket()
                    # Registered before the send so an arbitrarily fast
                    # reply always finds its ticket.
                    w.pending[req_id] = ticket
                    tickets.append(ticket)
                    payload.append((req_id, b, tol, maxiter))
            try:
                w.conn.send(("solve_block", payload))
            except (OSError, ValueError) as exc:
                with w.state_lock:
                    for req_id, _, _, _ in payload:
                        w.pending.pop(req_id, None)
                raise WorkerCrashed(
                    f"worker {chosen} pipe is closed"
                ) from exc
        with self._lock:
            self._routed[chosen] += len(items)
        return tickets

    # ------------------------------------------------------------------
    # Client API (mirrors ShardedSolveService)
    # ------------------------------------------------------------------
    def submit(
        self,
        b: NDArray[np.float64],
        tol: float | None = None,
        maxiter: int | None = None,
        key: object | None = None,
    ) -> SolveTicket:
        """Route one right-hand side to a worker; returns its ticket.

        Parameters
        ----------
        b:
            Right-hand side of shape ``(n_dofs,)`` (snapshotted at
            submission; the bytes travel to the worker over its pipe).
        tol / maxiter:
            Per-request overrides of the workers' service defaults.
        key:
            Routing key (tenant id) — semantics identical to
            :meth:`repro.serve.shard.ShardedSolveService.submit`.

        Returns
        -------
        ~repro.serve.service.SolveTicket
            Resolves to the request's :class:`~repro.sem.cg.CGResult`,
            bit-identical to a sequential warm solve regardless of
            which worker served it.

        Raises
        ------
        ValueError
            On a bad shape or invalid ``tol``/``maxiter`` (bounced
            parent-side, before crossing the process boundary).
        ~repro.serve.scheduler.QueueClosed
            After :meth:`close`.
        WorkerCrashed
            If the routed-to worker has died.
        """
        b, tol, maxiter = self._validate_request(b, tol, maxiter)
        with self._lock:
            if self._closed:
                raise QueueClosed(
                    "submit on a closed process-sharded service"
                )
        if self._router.uses_depths or self.queue_watermark is not None:
            depths = self.queue_depths
        else:
            depths = (0,) * self.workers
        chosen = self._route(key, depths)
        return self._dispatch_block(chosen, [(b, tol, maxiter)])[0]

    def solve_many(
        self,
        bs,
        tol: float | None = None,
        maxiter: int | None = None,
        keys: Sequence[object] | None = None,
    ) -> list[CGResult]:
        """Solve a block of right-hand sides; results in input order.

        The whole block is routed up front and shipped as *one* pipe
        message per addressed worker (requests are where the process
        tier pays, so they travel in bulk); routing decisions that read
        depths see the live in-flight counts plus the requests already
        planned within this call, exactly as per-request submission
        would have accumulated them.  A group routed to a dead worker
        fails with :class:`WorkerCrashed` — raised from the result
        gather, but only after every healthy worker's group was
        dispatched.
        """
        if keys is not None and len(keys) != len(bs):
            raise ValueError(
                f"keys length {len(keys)} != number of requests {len(bs)}"
            )
        validated = [
            self._validate_request(b, tol, maxiter) for b in bs
        ]
        with self._lock:
            if self._closed:
                raise QueueClosed(
                    "submit on a closed process-sharded service"
                )
        reads_depths = (
            self._router.uses_depths or self.queue_watermark is not None
        )
        planned = [0] * self.workers
        groups: dict[int, list] = {}
        order: list[tuple[int, int]] = []
        for i, item in enumerate(validated):
            if reads_depths:
                live = self.queue_depths
                depths = tuple(
                    live[j] + planned[j] for j in range(self.workers)
                )
            else:
                depths = (0,) * self.workers
            chosen = self._route(
                None if keys is None else keys[i], depths
            )
            planned[chosen] += 1
            slot = groups.setdefault(chosen, [])
            order.append((chosen, len(slot)))
            slot.append(item)
        dispatched: dict[int, list[SolveTicket]] = {}
        for chosen, items in groups.items():
            try:
                dispatched[chosen] = self._dispatch_block(chosen, items)
            except (WorkerCrashed, QueueClosed) as exc:
                # A dead (or closing) worker must not abandon the
                # groups already dispatched to healthy workers: settle
                # this group's tickets with the error and keep going —
                # the gather below re-raises it, but only after every
                # other group went out.
                failed = []
                for _ in items:
                    ticket = SolveTicket()
                    ticket._fail(exc)
                    failed.append(ticket)
                dispatched[chosen] = failed
        tickets = [dispatched[chosen][pos] for chosen, pos in order]
        return [t.result() for t in tickets]

    def flush(self) -> None:
        """Ask every live worker to drain its pending queue now.

        Returns once every live worker has *solved* its pending
        requests; the results themselves may still be in flight on the
        pipes for a moment (wait on the tickets for delivery).  Workers
        that die mid-flush are skipped — their in-flight tickets fail
        through the crash path, not through this call.
        """
        for w in self._workers:
            with w.state_lock:
                if not w.alive:
                    continue
            try:
                self._request(w, "flush")
            except WorkerCrashed:
                continue  # died between the liveness check and the ask

    def close(self) -> None:
        """Drain every worker, join the processes, unlink shared memory.

        Idempotent.  Every ticket submitted before ``close`` resolves
        (the no-dropped-requests guarantee); workers that fail to drain
        within :attr:`JOIN_TIMEOUT` are terminated, failing whatever
        they still held.
        """
        with self._lock:
            self._closed = True
            if self._torn_down:
                return
            self._torn_down = True
        for w in self._workers:
            with w.send_lock:
                with w.state_lock:
                    if not w.alive or w.close_sent:
                        continue
                    w.close_sent = True
                try:
                    w.conn.send(("close",))
                except (OSError, ValueError):
                    pass
        for w in self._workers:
            if w.reader is not None:
                w.reader.join(timeout=self.JOIN_TIMEOUT)
            w.process.join(timeout=self.JOIN_TIMEOUT)
            if w.process.is_alive():  # refused to drain: last resort
                w.process.terminate()
                w.process.join(timeout=5.0)
            if w.reader is not None and w.reader.is_alive():
                w.reader.join(timeout=5.0)
            w.conn.close()
        self._export.close(unlink=True)

    def __enter__(self) -> "ProcessShardedSolveService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        with self._lock:
            return self._closed

    @property
    def spec(self):
        """The picklable :class:`~repro.sem.spec.ProblemSpec` workers
        rebuilt their problems from (shared manifests included)."""
        return self._export.spec

    @property
    def shared_blocks(self) -> tuple[str, ...]:
        """Names of the live shared-memory blocks (empty after close)."""
        return self._export.block_names

    @property
    def alive_workers(self) -> tuple[bool, ...]:
        """Liveness of each worker's reply channel."""
        return tuple(w.alive for w in self._workers)

    @property
    def queue_depths(self) -> tuple[int, ...]:
        """In-flight request count per worker (submitted, unresolved)."""
        return tuple(len(w.pending) for w in self._workers)

    @property
    def routed(self) -> tuple[int, ...]:
        """Requests routed to each worker (diversions land on the
        worker they were diverted *to*)."""
        with self._lock:
            return tuple(self._routed)

    @property
    def rebalanced(self) -> int:
        """Requests diverted off their routed worker by the watermark."""
        with self._lock:
            return self._rebalanced

    def worker_info(self) -> tuple[dict, ...]:
        """One introspection dict per live worker (pid, attached block
        names, geometry writability) — the zero-copy sharing, attested
        by the workers themselves."""
        infos = []
        for w in self._workers:
            with w.state_lock:
                if not w.alive:
                    continue
            try:
                infos.append(self._request(w, "info")[0])
            except WorkerCrashed:
                continue  # died between the liveness check and the ask
        return tuple(infos)

    @property
    def replica_stats(self) -> tuple[StatsSnapshot, ...]:
        """One snapshot per live worker, clock-rebased onto this
        process (see :meth:`repro.serve.stats.StatsSnapshot.rebased`);
        dead workers' stats died with them and are omitted."""
        snaps = []
        for w in self._workers:
            with w.state_lock:
                if not w.alive:
                    continue
            try:
                snapshot, worker_offset = self._request(w, "stats")
            except WorkerCrashed:
                continue  # died between the liveness check and the ask
            snaps.append(
                snapshot.rebased(worker_offset - perf_epoch_offset())
            )
        return tuple(snaps)

    @property
    def stats(self) -> StatsSnapshot:
        """Aggregate fleet snapshot; the cross-process clock rebase
        makes its ``wall_seconds`` (and so ``solves_per_second``) span
        the true fleet activity window."""
        return merge_snapshots(self.replica_stats)
