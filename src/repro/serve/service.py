"""The dynamic micro-batching solve service.

The paper frames the FPGA SEM accelerator as a device an application
streams solves through; Nekbone — its CPU baseline — is the Jacobi-CG
loop this repo runs allocation-free and batched.  PR 2 built the batched
primitive (:func:`repro.sem.cg.cg_solve_batched`, one warm workspace
carrying ``B`` stacked right-hand sides); this module builds the thing
that *feeds* it: a service that accepts independent single-RHS solve
requests from any number of client threads and dynamically coalesces
them into stacked batched solves.

Guarantees:

* **Bit-identical results.**  Both CG paths accumulate with the same
  fused multiply + pairwise-sum reductions and the batched kernels sweep
  systems through the identical op sequence, so every request's
  :class:`~repro.sem.cg.CGResult` is bit-for-bit what a sequential
  warm :func:`~repro.sem.cg.cg_solve` would have produced — batching is
  purely a throughput decision, invisible to numerics.
* **Per-request parameters.**  ``tol`` and ``maxiter`` ride with each
  request; heterogeneous requests coalesce into one stacked solve via
  the per-system stopping criteria of
  :func:`~repro.sem.cg.cg_solve_batched`.
* **Backpressure.**  ``max_pending`` bounds the queue; ``submit``
  blocks (never drops) when clients outrun the solver.

Two front-ends share the machinery:

* :meth:`SolveService.solve_many` — synchronous, for scripts: submit a
  block of requests, drain inline, get ordered results.
* ``background=True`` — a dispatcher thread batches concurrent
  :meth:`SolveService.submit` calls from many clients, firing a batch
  when ``max_batch`` requests are pending or ``max_wait`` seconds after
  the oldest arrived.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from numpy.typing import NDArray

from repro.sem.cg import (
    CGResult,
    MixedCGResult,
    cg_solve_batched,
    cg_solve_batched_mixed,
    check_precision,
)
from repro.serve.errors import DeadlineExceeded, ServiceClosed
from repro.serve.pool import WorkspacePool
from repro.serve.scheduler import MicroBatcher
from repro.serve.stats import ServiceStats, StatsSnapshot

#: Attributes the solver-facing problem protocol requires
#: (PoissonProblem, HelmholtzProblem and NekboneCase all provide them).
_PROTOCOL = ("operator", "precond_diag", "batch_workspace", "n_dofs")


def check_request(
    n: int,
    b: NDArray[np.float64],
    tol: float | None,
    maxiter: int | None,
    deadline: float | None = None,
    precision: str | None = None,
    snapshot: bool = True,
) -> (
    "tuple[NDArray[np.float64], float | None, int | None, float | None,"
    " str | None]"
):
    """Snapshot + validate one request's parameters; no side effects.

    The single source of request-validation truth, shared by
    :meth:`SolveService.submit`/:meth:`SolveService.submit_block` (which
    pass *resolved* knobs, so service defaults are validated too) and
    the process shard's parent-side pre-flight (which passes ``None``
    for knobs the worker will resolve).  ``None`` knobs pass through
    unchecked; everything else is coerced and bounds-checked.
    ``deadline`` is the request's *relative* time budget in seconds
    (``None`` = no deadline); callers convert it to an absolute
    ``time.monotonic()`` instant themselves.  ``precision`` is the
    request's solve policy (``"fp64"``/``"mixed"``, ``None`` = resolve
    later).

    ``snapshot=False`` skips the defensive rhs copy and accepts ``b``
    as a zero-copy *view* (coerced only if it is not already a float64
    ndarray) — for callers whose transport already owns the bytes: the
    process shard's workers solve straight out of shared-memory ring
    slots, and its ring-ingest parent copies into a slot itself, making
    a prior snapshot pure waste.  Such callers take on the snapshot
    contract themselves: the array must not change under a queued
    request.
    """
    if snapshot:
        b = np.array(b, dtype=np.float64)  # snapshot: caller may mutate
    else:
        b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"rhs must have shape ({n},), got {b.shape}")
    if tol is not None:
        tol = float(tol)
        if not np.isfinite(tol) or tol < 0:
            raise ValueError(f"tol must be finite and >= 0, got {tol}")
    if maxiter is not None:
        maxiter = int(maxiter)
        if maxiter < 0:
            raise ValueError(f"maxiter must be >= 0, got {maxiter}")
    if deadline is not None:
        deadline = float(deadline)
        if not np.isfinite(deadline) or deadline <= 0:
            raise ValueError(
                f"deadline must be finite and > 0 seconds, got {deadline}"
            )
    if precision is not None:
        check_precision(precision)
    return b, tol, maxiter, deadline, precision


class SolveTicket:
    """Handle to one submitted request; resolves to a
    :class:`~repro.sem.cg.CGResult`.

    Tickets are created by :meth:`SolveService.submit` and resolved by
    whichever thread executes the batch containing the request (the
    background dispatcher, or a client draining synchronously).  A thin
    veneer over :class:`concurrent.futures.Future`, which already has
    the cross-thread resolve/wait/re-raise semantics needed here.

    A ticket can be :meth:`cancel`-led to *disown* the request — e.g.
    after :meth:`result` timed out and the caller no longer wants the
    answer.  Cancellation is **drop-only**: it never reaches into a
    queue or a batch (so it cannot poison batchmates); the solve may
    still execute and still counts in the service stats — only the
    result's delivery is dropped.  These are exactly the semantics the
    asyncio front has always had (cancelling its wrapped future), now
    uniform across fronts.
    """

    __slots__ = ("_future",)

    def __init__(self) -> None:
        self._future: Future[CGResult] = Future()

    def done(self) -> bool:
        """True once the request has been solved (or failed)."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> CGResult:
        """Block until resolved and return the request's result.

        Parameters
        ----------
        timeout:
            Seconds to wait; ``None`` waits indefinitely.

        Returns
        -------
        ~repro.sem.cg.CGResult
            The request's solve outcome.

        Raises
        ------
        TimeoutError
            If ``timeout`` elapses before the request resolves.
        Exception
            Re-raises the batch's exception if the solve failed.
        """
        return self._future.result(timeout)

    def exception(
        self, timeout: float | None = None
    ) -> BaseException | None:
        """Block until resolved and return the failure (or ``None``).

        The non-raising twin of :meth:`result`: callers that need to
        inspect a failed batch's error without a ``try``/``except`` (the
        asyncio front-end's transfer callback) read it here.
        """
        return self._future.exception(timeout)

    def add_done_callback(self, fn: "Callable[[SolveTicket], None]") -> None:
        """Invoke ``fn(ticket)`` once the request resolves or fails.

        The callback runs on whichever thread resolves the ticket (the
        background dispatcher or a draining client) — or immediately on
        the calling thread if the ticket is already done — so it must be
        cheap and must not block.  This is the hand-off point the
        asyncio front-end uses to re-enter the event loop via
        ``loop.call_soon_threadsafe``.
        """
        self._future.add_done_callback(lambda _f: fn(self))

    def cancel(self) -> bool:
        """Disown the request: drop its result when (and if) it arrives.

        Returns ``True`` if the ticket was still pending (it is now
        cancelled: :meth:`result`/:meth:`exception` raise
        :class:`concurrent.futures.CancelledError`, done callbacks
        fire), ``False`` if the request had already resolved or failed.
        Drop-only — the request is *not* pulled out of its queue and a
        batch already containing it still solves every batchmate; the
        service simply discards the outcome on delivery.
        """
        return self._future.cancel()

    def cancelled(self) -> bool:
        """True once :meth:`cancel` has disowned the request."""
        return self._future.cancelled()

    # Called by the service only.  Cancellation races with resolution
    # (client thread vs. dispatcher), and futures refuse transitions on
    # a cancelled/settled state — for a drop-only contract losing that
    # race simply means the outcome is discarded.
    def _resolve(self, result: CGResult) -> None:
        if not self._future.cancelled():
            try:
                self._future.set_result(result)
            except InvalidStateError:
                pass

    def _fail(self, error: BaseException) -> None:
        if not self._future.cancelled():
            try:
                self._future.set_exception(error)
            except InvalidStateError:
                pass


@dataclass
class _Request:
    """One queued solve: the copied rhs plus its request-level knobs.

    ``deadline_at`` is absolute ``time.monotonic()`` (or ``None``): the
    instant after which the request must not *start* solving.
    """

    ticket: SolveTicket
    b: NDArray[np.float64]
    tol: float
    maxiter: int
    deadline_at: float | None = None
    precision: str = "fp64"


@dataclass
class SolveService:
    """Dynamic micro-batching front-end over one SEM problem.

    Parameters
    ----------
    problem:
        A :class:`~repro.sem.poisson.PoissonProblem`,
        :class:`~repro.sem.helmholtz.HelmholtzProblem` or
        :class:`~repro.sem.nekbone.NekboneCase` (anything exposing
        ``operator`` / ``precond_diag()`` / ``batch_workspace()`` /
        ``n_dofs``).  The service inherits the problem's ``threads=``
        setting through its workspaces — thread over element blocks,
        batch over requests.
    max_batch:
        Largest number of requests coalesced into one stacked solve.
    max_wait:
        Latency bound on coalescing: the background dispatcher fires a
        partial batch once the *oldest* pending request has waited this
        many seconds since arrival (time spent solving the previous
        batch counts).  Ignored by the synchronous front-end, which
        drains on demand.
    max_pending:
        Backpressure bound on queued requests; ``submit`` blocks while
        the queue is full.  Defaults to ``4 * max_batch`` in background
        mode, unbounded otherwise (the synchronous front-end drains
        inline, so its queue cannot grow past ``max_batch``).
    tol / maxiter:
        Service-level defaults for requests that don't override them.
    precision:
        Service-level default solve policy (``"fp64"`` or ``"mixed"``)
        for requests that don't override it per submission.  ``None``
        (the default) inherits the problem's own ``precision``
        attribute, so a fleet built over a ``precision="mixed"``
        problem serves mixed by default without re-stating the policy
        at every layer.  Mixed and
        fp64 requests may coalesce into the same queue batch; the
        service splits them into **separate dispatch groups** at solve
        time (one fp64 :func:`~repro.sem.cg.cg_solve_batched`, one
        fp32-inner :func:`~repro.sem.cg.cg_solve_batched_mixed`), so
        each request's numerics are exactly its precision's solo path.
        ``"mixed"`` requires the problem to expose an ``operator32``
        twin.
    precondition:
        Use the problem's cached Jacobi diagonal (default) or solve
        unpreconditioned.
    background:
        Spawn the dispatcher thread.  Without it, batches fire inside
        ``submit`` whenever ``max_batch`` requests are pending, and
        :meth:`flush` / :meth:`solve_many` drain the rest.

    Close the service (or use it as a context manager) to drain the
    queue and stop the dispatcher; tickets submitted before ``close``
    are always resolved.

    Thread safety
    -------------
    :meth:`submit`, :meth:`flush`, :meth:`solve_many`, :attr:`stats`
    and :meth:`close` are safe from any number of threads: the queue is
    a lock-protected :class:`~repro.serve.scheduler.MicroBatcher`,
    solves serialize through the :class:`~repro.serve.pool.WorkspacePool`
    lease, and stats snapshots are cut under the accumulator's lock.
    The *problem* itself is single-solve (shared workspace buffers) —
    which is exactly what the pool enforces; use
    :class:`~repro.serve.shard.ShardedSolveService` for solve-level
    parallelism across problem clones.
    """

    problem: object
    max_batch: int = 8
    max_wait: float = 1e-3
    max_pending: int | None = None
    tol: float = 1e-10
    maxiter: int = 1000
    precision: str | None = None
    precondition: bool = True
    background: bool = False

    stats_accumulator: ServiceStats = field(
        init=False, repr=False, default_factory=ServiceStats
    )

    def __post_init__(self) -> None:
        missing = [a for a in _PROTOCOL if not hasattr(self.problem, a)]
        if missing:
            raise TypeError(
                f"problem {type(self.problem).__name__} lacks the solver "
                f"protocol attribute(s) {missing}; expected a "
                "PoissonProblem, HelmholtzProblem or NekboneCase"
            )
        if self.precision is None:
            self.precision = getattr(self.problem, "precision", "fp64")
        check_precision(self.precision)
        if self.max_pending is None and self.background:
            self.max_pending = 4 * self.max_batch
        self._operator = self.problem.operator
        # The fp32 twin is optional problem equipment (not part of
        # _PROTOCOL): fp64-only problems keep working unchanged, and a
        # mixed request against one bounces at submission.
        self._operator32 = getattr(self.problem, "operator32", None)
        if self.precision == "mixed" and self._operator32 is None:
            raise TypeError(
                f"precision='mixed' needs an operator32 twin, which "
                f"problem {type(self.problem).__name__} does not expose"
            )
        self._diag = (
            self.problem.precond_diag() if self.precondition else None
        )
        self._n = int(self.problem.n_dofs)
        self._pool = WorkspacePool(self.problem)
        self._batcher: MicroBatcher[_Request] = MicroBatcher(
            max_batch=self.max_batch,
            max_wait=self.max_wait,
            max_pending=self.max_pending,
        )
        # Snapshots sample the live queue length inside the stats lock,
        # so concurrent submitters/dispatchers can never leave a stale
        # depth behind (see ServiceStats.depth_fn).
        self.stats_accumulator.depth_fn = self._batcher.__len__
        self._dispatcher: threading.Thread | None = None
        if self.background:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="sem-serve-dispatch",
                daemon=True,
            )
            self._dispatcher.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(
        self,
        b: NDArray[np.float64],
        tol: float | None = None,
        maxiter: int | None = None,
        deadline: float | None = None,
        precision: str | None = None,
    ) -> SolveTicket:
        """Queue one right-hand side for solving; returns its ticket.

        Parameters
        ----------
        b:
            Right-hand side of shape ``(n_dofs,)``.  Copied at
            submission, so callers may reuse their buffer immediately.
        tol / maxiter:
            Per-request overrides of the service defaults; each request
            keeps its own stopping criteria inside whatever batch it
            coalesces into.
        deadline:
            Optional time budget in seconds (relative to now).  A
            request still queued when it expires fails its ticket with
            :class:`~repro.serve.errors.DeadlineExceeded` instead of
            solving; a request already mid-solve is never interrupted
            (the deadline gates *starting* work, not finishing it).
        precision:
            Per-request override of the service's solve policy
            (``"fp64"`` or ``"mixed"``); the ticket resolves to a
            :class:`~repro.sem.cg.MixedCGResult` for mixed requests.

        Returns
        -------
        SolveTicket
            Resolves to the request's :class:`~repro.sem.cg.CGResult`
            (or :class:`~repro.sem.cg.MixedCGResult`).

        Raises
        ------
        ValueError
            On a bad rhs shape or invalid ``tol``/``maxiter``/
            ``deadline`` — bounced off the offending caller here, never
            allowed to poison the innocent batchmates a bad value would
            have coalesced with.
        ~repro.serve.errors.ServiceClosed
            After :meth:`close`.

        Notes
        -----
        Thread-safe; blocks when the queue is at ``max_pending``
        (backpressure).  In synchronous mode (no background dispatcher)
        the submitter whose request fills a batch pays for solving it
        inline.
        """
        request = self._build_request(b, tol, maxiter, deadline, precision)
        # Count the submission BEFORE enqueueing: once the request is in
        # the queue a background dispatcher may solve and record it
        # immediately, and a snapshot cut in between must never show
        # more completions than submissions.
        self.stats_accumulator.record_submit()
        try:
            depth = self._batcher.put(request)
        except BaseException:
            self.stats_accumulator.record_rejected()
            raise
        self.stats_accumulator.record_depth(depth)
        if self._dispatcher is None and depth >= self.max_batch:
            # Synchronous mode: the submitting client pays for the
            # full batch it just completed.
            self._drain(once=True)
        return request.ticket

    def _build_request(
        self,
        b: NDArray[np.float64],
        tol: float | None,
        maxiter: int | None,
        deadline: float | None = None,
        precision: str | None = None,
        snapshot: bool = True,
    ) -> _Request:
        """Snapshot + validate one request (no side effects on failure).

        Validation happens HERE, not in the batched solve: a bad value
        must bounce off the offending caller, never fail the innocent
        requests coalesced into the same batch.  Knobs are resolved to
        the service defaults *before* validation, so an invalid service
        default is caught too.  The relative ``deadline`` becomes an
        absolute ``time.monotonic()`` instant now, at submission — queue
        time counts against the budget.
        """
        b, tol_val, maxiter_val, deadline_val, precision_val = check_request(
            self._n, b,
            self.tol if tol is None else tol,
            self.maxiter if maxiter is None else maxiter,
            deadline,
            self.precision if precision is None else precision,
            snapshot=snapshot,
        )
        if precision_val == "mixed" and self._operator32 is None:
            raise TypeError(
                f"precision='mixed' needs an operator32 twin, which "
                f"problem {type(self.problem).__name__} does not expose"
            )
        return _Request(
            ticket=SolveTicket(), b=b, tol=tol_val, maxiter=maxiter_val,
            deadline_at=(
                None if deadline_val is None
                else time.monotonic() + deadline_val
            ),
            precision=precision_val,
        )

    def submit_block(
        self,
        items: "list[tuple]",
        snapshot: bool = True,
    ) -> list[SolveTicket]:
        """Submit a block of ``(b, tol, maxiter[, deadline[, precision]])``
        requests.

        The block-ingest twin of :meth:`submit`, used by the process
        shard (:mod:`repro.serve.procshard`): the whole block is
        validated first (all-or-nothing — an invalid element raises
        ``ValueError`` before anything is enqueued), then enqueued
        under one queue-lock acquisition with a single dispatcher
        wake-up instead of one per request.  Items may be 3-tuples
        (no deadline), 4-tuples with a relative deadline in seconds, or
        5-tuples adding a per-request precision policy.

        ``snapshot=False`` queues each item's rhs as a zero-copy view
        instead of a defensive copy (see :func:`check_request`) — the
        process shard's workers pass shared-memory ring slots through
        here without re-staging a single payload byte; the caller
        guarantees the bytes stay put until the request resolves.

        Returns
        -------
        list of SolveTicket
            One ticket per item, in order — always, even when the
            service closes mid-block: requests that made it into the
            queue resolve normally (drain-on-close), the stragglers'
            tickets fail with :class:`~repro.serve.errors.ServiceClosed`.
            Closure is reported through the tickets rather than raised,
            so a bulk caller never has to guess which half of its block
            survived.

        Raises
        ------
        ValueError
            On any invalid element (nothing enqueued).
        """
        requests = [
            self._build_request(b, tol, maxiter, *rest, snapshot=snapshot)
            for b, tol, maxiter, *rest in items
        ]
        tickets = [request.ticket for request in requests]
        for _ in requests:
            self.stats_accumulator.record_submit()
        enqueued = 0
        try:
            if self._dispatcher is None:
                # Foreground: nothing else ever drains the queue, so
                # bulk-enqueueing could wedge on the block's own
                # max_pending backpressure (even a single chunk can,
                # when residual items from earlier submits already
                # occupy part of the queue).  Use submit()'s proven
                # item-wise enqueue + drain-at-max_batch instead — the
                # bulk wake-up win only matters when there is a
                # dispatcher to wake.
                for request in requests:
                    depth = self._batcher.put(request)
                    enqueued += 1
                    self.stats_accumulator.record_depth(depth)
                    if depth >= self.max_batch:
                        self._drain(once=True)
            else:
                depth = self._batcher.put_many(requests)
                enqueued = len(requests)
                self.stats_accumulator.record_depth(depth)
        except ServiceClosed as exc:
            enqueued += getattr(exc, "enqueued", 0)
            for request in requests[enqueued:]:
                self.stats_accumulator.record_rejected()
                request.ticket._fail(exc)
            if enqueued:
                self.stats_accumulator.record_depth(len(self._batcher))
        return tickets

    def flush(self) -> None:
        """Solve everything pending on the caller's thread.

        The synchronous complement to the background dispatcher: after a
        burst of :meth:`submit` calls, one ``flush`` resolves every
        outstanding ticket (partial batches included).  Safe to call in
        background mode too (client and dispatcher simply split the
        queue between them).
        """
        self._drain(once=False)

    def solve_many(
        self,
        bs,
        tol: float | None = None,
        maxiter: int | None = None,
        deadline: float | None = None,
        precision: str | None = None,
    ) -> "list[CGResult | MixedCGResult]":
        """Solve a block of right-hand sides; results in input order.

        The scripted front-end: equivalent to submitting every row and
        waiting on every ticket, with the batches solved inline (or by
        the dispatcher in background mode).

        Parameters
        ----------
        bs:
            ``(M, n)`` array or sequence of ``(n,)`` vectors; ``M`` may
            exceed ``max_batch`` — the service chunks it.
        tol / maxiter:
            Shared per-request overrides of the service defaults.
        deadline:
            Shared per-request time budget in seconds (see
            :meth:`submit`); waiting on the results re-raises
            :class:`~repro.serve.errors.DeadlineExceeded` for any row
            that expired before solving.
        precision:
            Shared per-request solve policy override (``"fp64"`` or
            ``"mixed"``).

        Returns
        -------
        list of ~repro.sem.cg.CGResult
            One result per input row, in input order, each bit-identical
            to a sequential warm solve of that row
            (:class:`~repro.sem.cg.MixedCGResult` for mixed rows).
        """
        tickets = self.submit_block(
            [(b, tol, maxiter, deadline, precision) for b in bs]
        )
        if self._dispatcher is None:
            self.flush()
        return [t.result() for t in tickets]

    @property
    def stats(self) -> StatsSnapshot:
        """A consistent snapshot of the service counters."""
        return self.stats_accumulator.snapshot()

    @property
    def queue_depth(self) -> int:
        """Requests currently pending (not yet dispatched)."""
        return len(self._batcher)

    def close(self) -> None:
        """Drain pending requests, resolve their tickets, stop serving.

        Idempotent.  Further ``submit`` calls raise ``ServiceClosed``.
        """
        self._batcher.close()
        # Snapshot-then-clear: two threads racing into close() must not
        # both pass the None check and have one call .join() on the
        # None the other already stored.  Joining the same Thread twice
        # is safe; joining None is an AttributeError.
        dispatcher = self._dispatcher
        self._dispatcher = None
        if dispatcher is not None:
            dispatcher.join()
        self._drain(once=False)  # foreground leftovers (no-op otherwise)
        self._pool.shutdown()

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            batch = self._batcher.take_batch()
            if batch:
                self._solve_batch(batch)
            elif self._batcher.closed:
                return
            # else: another thread drained the queue first; wait again.

    def _drain(self, once: bool) -> None:
        """Pop-and-solve pending batches on the calling thread.

        Safe from any number of threads: pops are serialized by the
        batcher's lock and solves by the workspace pool's lease.
        """
        while True:
            batch = self._batcher.take_batch_nowait()
            if not batch:
                return
            self._solve_batch(batch)
            if once:
                return

    def _solve_batch(self, batch: list[_Request]) -> None:
        """One stacked dispatch: solve ``len(batch)`` requests at once.

        The batch is already popped from the queue, so every ticket in
        it MUST leave here resolved or failed — batch assembly included
        in the guarded region, else an allocation failure would strand
        tickets forever.  ``KeyboardInterrupt``/``SystemExit`` still
        fail the tickets (their waiters unblock) but propagate to the
        caller instead of being swallowed into ticket state.

        Requests whose deadline has already passed are expired here —
        one clock read gates the whole batch, *before* any solve work —
        so an expired request never consumes solver time and never
        delays its live batchmates.

        Mixed-precision and fp64 requests that coalesced into the same
        queue batch are split into separate dispatch groups (one stacked
        solve and one stats record each): the two paths run different
        kernels over different workspaces, and sharing a stacked solve
        would force one group through the other's numerics.
        """
        now = time.monotonic()
        expired = [
            req for req in batch
            if req.deadline_at is not None and req.deadline_at <= now
        ]
        if expired:
            self.stats_accumulator.record_expired(len(expired))
            for req in expired:
                req.ticket._fail(DeadlineExceeded(
                    "request deadline expired before its solve started"
                ))
            batch = [
                req for req in batch
                if req.deadline_at is None or req.deadline_at > now
            ]
            if not batch:
                return
        groups = [
            group for group in (
                [req for req in batch if req.precision != "mixed"],
                [req for req in batch if req.precision == "mixed"],
            ) if group
        ]
        for i, group in enumerate(groups):
            try:
                self._solve_group(group)
            except BaseException:
                # Only interrupts escape _solve_group; fail the still
                # pending later groups' tickets before propagating so
                # no waiter is stranded.
                for later in groups[i + 1:]:
                    for req in later:
                        req.ticket._fail(ServiceClosed(
                            "service interrupted before this dispatch group"
                        ))
                raise

    def _solve_group(self, batch: list[_Request]) -> None:
        """One stacked dispatch of same-precision requests."""
        mixed = batch[0].precision == "mixed"
        start = time.perf_counter()
        nb = len(batch)
        try:
            bs = np.stack([req.b for req in batch])
            tols = np.array([req.tol for req in batch])
            maxiters = np.array(
                [req.maxiter for req in batch], dtype=np.int64
            )
            if mixed:
                with self._pool.lease_mixed(nb) as (ws, ws32):
                    res = cg_solve_batched_mixed(
                        self._operator, self._operator32, bs,
                        precond_diag=self._diag, tol=tols,
                        maxiter=maxiters, workspace=ws, workspace32=ws32,
                    )
            else:
                with self._pool.lease(nb) as ws:
                    res = cg_solve_batched(
                        self._operator, bs, precond_diag=self._diag,
                        tol=tols, maxiter=maxiters, workspace=ws,
                    )
        except BaseException as exc:  # resolve tickets even on breakdown
            # Stats first, tickets second: a client that has seen its
            # ticket resolve must also see itself counted in the next
            # snapshot (the inverse order would let snapshots trail the
            # results they describe).
            self.stats_accumulator.record_batch(
                nb, time.perf_counter() - start, len(self._batcher),
                failed=True,
            )
            for req in batch:
                req.ticket._fail(exc)
            if not isinstance(exc, Exception):
                raise  # interrupts abort the drain/dispatch loop
            return
        self.stats_accumulator.record_batch(
            nb, time.perf_counter() - start, len(self._batcher),
        )
        extract = _outcome_row_mixed if mixed else _outcome_row
        for k, req in enumerate(batch):
            req.ticket._resolve(extract(res, k))


def _outcome_row(res, k: int) -> CGResult:
    """Extract system ``k`` of a batched result as a ``CGResult``.

    The residual history is truncated to the system's own live prefix
    (rows past its convergence are frozen repeats), so every field is
    exactly what a sequential solve of that system would have reported —
    bit for bit.
    """
    iterations = int(res.iterations[k])
    return CGResult(
        x=res.x[k].copy(),
        iterations=iterations,
        converged=bool(res.converged[k]),
        residual_norm=float(res.residual_norm[k]),
        residual_history=tuple(
            float(v) for v in res.residual_history[: iterations + 1, k]
        ),
    )


def _outcome_row_mixed(res, k: int) -> MixedCGResult:
    """Extract system ``k`` of a batched mixed result.

    Histories are truncated to the system's own sweep count (later rows
    are frozen repeats while slower batchmates refined), so the record
    matches a solo :func:`~repro.sem.cg.cg_solve_mixed` of that system.
    """
    sweeps = int(res.sweeps[k])
    return MixedCGResult(
        x=res.x[k].copy(),
        iterations=int(res.iterations[k]),
        converged=bool(res.converged[k]),
        residual_norm=float(res.residual_norm[k]),
        residual_history=tuple(
            float(v) for v in res.residual_history[: sweeps + 1, k]
        ),
        sweeps=sweeps,
        inner_iterations=tuple(
            int(v) for v in res.inner_iterations[:sweeps, k]
        ),
    )
