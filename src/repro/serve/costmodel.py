"""Cost-predicted scheduling: learn per-request work, route by it.

The paper's throughput argument rests on *predictable per-solve cost*:
once the pipeline depth and the iteration count are known, sustained
throughput is arithmetic.  The serving analogue is that a request's
cost is not a mystery either — the same tenant solving the same
operator at the same tolerance converges in (nearly) the same number
of CG iterations every time, because the spectrum doesn't change
between requests.  :class:`CostModel` turns that regularity into a
scheduler signal: an exponentially-weighted estimate of *expected
iterations* keyed by ``(tenant, tol, precision)``, falling back to
``(tol, precision)`` and then to a global estimate for cold keys.

:class:`CostAwareRouter` is the policy that consumes it.  Queue-depth
routing counts every pending request as one unit of work; under
heterogeneous tolerances that is exactly wrong — a replica holding
four ``tol=1e-2`` requests (a dozen iterations each) is far *less*
loaded than one holding two ``tol=1e-12`` requests (a hundred-plus
each).  Worse, micro-batching amplifies the mistake: a stacked
``cg_solve_batched`` dispatch runs until its *slowest* member
converges, so a cheap request coalesced with an expensive one pays the
expensive iteration count.  Routing by predicted outstanding work both
balances actual load *and* segregates dissimilar costs onto different
replicas (work-balancing with unequal item sizes is bin packing), so
batches stay homogeneous and cheap requests stop inheriting expensive
batchmates' tails.

Feedback protocol
-----------------
The shard tiers keep routers decoupled from tickets; cost feedback
rides a small duck-typed protocol (see
:func:`~repro.serve.scheduler.attach_cost_feedback`):

* ``begin_request(replica, key, tol, precision) -> cost`` — called
  right after a routed submit is accepted; the router adds the
  predicted cost to the replica's outstanding-work ledger and returns
  it so the completion can subtract exactly what was added.
* ``finish_request(replica, cost, key, tol, precision, iterations)`` —
  called from the ticket's done-callback; subtracts ``cost`` and, when
  the solve reported its actual ``iterations``, feeds the observation
  back into the model.

Routers that don't implement the protocol (all the pre-existing
policies) are untouched — the shard tiers probe with ``getattr``.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from repro.analysis.runtime import race_checked
from repro.serve.scheduler import Router

__all__ = ["CostModel", "CostAwareRouter"]


def _cost_key(
    tenant: object | None, tol: float | None, precision: str | None
) -> tuple:
    """The model's full key; ``None`` components are legitimate values
    (service-default tol, keyless requests) and key their own cells."""
    return (tenant, tol, precision)


class _Estimate:
    """One EWMA cell: count + exponentially-weighted mean iterations."""

    __slots__ = ("count", "mean")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0

    def observe(self, value: float, alpha: float) -> None:
        self.count += 1
        if self.count == 1:
            self.mean = float(value)
        else:
            self.mean += alpha * (float(value) - self.mean)


@race_checked
class CostModel:
    """Expected-iterations estimator keyed by ``(tenant, tol, precision)``.

    Parameters
    ----------
    alpha:
        EWMA weight of each new observation (``0 < alpha <= 1``).  The
        default ``0.3`` tracks drift (mesh deformation between a flow
        tenant's timesteps) while smoothing one-off outliers.
    default_cost:
        Prediction for a completely cold model (no observation at any
        fallback level yet).  One "average solve" in the serving
        shape's typical band; only the *relative* costs matter to the
        router, so the absolute default is uncritical.

    Prediction falls back hierarchically: exact ``(tenant, tol,
    precision)`` history first, then ``(tol, precision)`` across
    tenants (a new tenant at a known tolerance starts from its
    tolerance class), then the global mean, then ``default_cost``.

    Thread safety
    -------------
    All methods take one internal lock; :meth:`predict` and
    :meth:`observe` are called on hot submit/completion paths and do
    O(1) work under it.
    """

    _GUARDED_BY = {
        "_exact": "_lock", "_by_tol": "_lock", "_global": "_lock",
    }

    def __init__(self, alpha: float = 0.3, default_cost: float = 50.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if default_cost <= 0:
            raise ValueError(
                f"default_cost must be > 0, got {default_cost}"
            )
        self.alpha = alpha
        self.default_cost = default_cost
        self._lock = threading.Lock()
        self._exact: dict[tuple, _Estimate] = {}
        self._by_tol: dict[tuple, _Estimate] = {}
        self._global = _Estimate()

    # ------------------------------------------------------------------
    def predict(
        self,
        tenant: object | None = None,
        tol: float | None = None,
        precision: str | None = None,
    ) -> float:
        """Expected iterations for one request (never <= 0)."""
        with self._lock:
            cell = self._exact.get(_cost_key(tenant, tol, precision))
            if cell is None or cell.count == 0:
                cell = self._by_tol.get((tol, precision))
            if cell is None or cell.count == 0:
                cell = self._global
            if cell.count == 0:
                return self.default_cost
            # A converged-in-zero-iterations solve (b == 0) must not
            # make a key look free to the router.
            return max(cell.mean, 1.0)

    def observe(
        self,
        tenant: object | None,
        tol: float | None,
        precision: str | None,
        iterations: float,
    ) -> None:
        """Feed one completed solve's actual iteration count back in."""
        if iterations < 0:
            raise ValueError(
                f"iterations must be >= 0, got {iterations}"
            )
        with self._lock:
            key = _cost_key(tenant, tol, precision)
            cell = self._exact.get(key)
            if cell is None:
                cell = self._exact[key] = _Estimate()
            cell.observe(iterations, self.alpha)
            tol_key = (tol, precision)
            cell = self._by_tol.get(tol_key)
            if cell is None:
                cell = self._by_tol[tol_key] = _Estimate()
            cell.observe(iterations, self.alpha)
            self._global.observe(iterations, self.alpha)

    @property
    def observations(self) -> int:
        """Total solves observed (all keys)."""
        with self._lock:
            return self._global.count

    def snapshot(self) -> dict[tuple, tuple[int, float]]:
        """``{(tenant, tol, precision): (count, mean_iterations)}`` for
        every exact key observed so far."""
        with self._lock:
            return {
                key: (cell.count, cell.mean)
                for key, cell in self._exact.items()
            }

    def seed(
        self, history: Mapping[tuple, tuple[int, float]]
    ) -> None:
        """Warm-start from recorded per-tenant history.

        Parameters
        ----------
        history:
            ``{(tenant, tol, precision): (count, mean_iterations)}`` —
            the shape of :attr:`CostModel.snapshot` and of
            :attr:`~repro.serve.stats.StatsSnapshot.tenant_iterations`
            (where the per-key value is ``(count, iterations_sum)``;
            pass ``(count, total / count)`` means — see
            :meth:`from_stats`).

        Existing cells are *not* overwritten: seeding is for cold
        starts, live observations always win.
        """
        with self._lock:
            for key, (count, mean) in history.items():
                if count < 1:
                    continue
                tenant, tol, precision = key
                if key not in self._exact:
                    cell = self._exact[key] = _Estimate()
                    cell.count = int(count)
                    cell.mean = float(mean)
                tol_key = (tol, precision)
                if tol_key not in self._by_tol:
                    cell = self._by_tol[tol_key] = _Estimate()
                    cell.count = int(count)
                    cell.mean = float(mean)
                if self._global.count == 0:
                    self._global.count = int(count)
                    self._global.mean = float(mean)

    @classmethod
    def from_stats(
        cls,
        tenant_iterations: Mapping[tuple, tuple[int, float]],
        alpha: float = 0.3,
        default_cost: float = 50.0,
    ) -> "CostModel":
        """Build a model pre-seeded from a
        :attr:`~repro.serve.stats.StatsSnapshot.tenant_iterations`
        history (``{key: (count, iterations_sum)}``)."""
        model = cls(alpha=alpha, default_cost=default_cost)
        model.seed({
            key: (count, total / count)
            for key, (count, total) in tenant_iterations.items()
            if count > 0
        })
        return model


@race_checked
class CostAwareRouter(Router):
    """Route each request to the replica with the least predicted
    outstanding work.

    The scheduling upgrade over :class:`~repro.serve.scheduler.
    LeastLoadedRouter`: instead of counting queued requests, the router
    keeps a per-replica ledger of predicted iterations still in flight
    (fed through the ``begin_request``/``finish_request`` protocol) and
    places each request where that ledger is smallest.  Queue depths
    act only as a tie-breaker — they catch work the ledger cannot see,
    such as requests submitted by clients bypassing the cost hooks.

    Parameters
    ----------
    replicas:
        Number of replica queues.
    model:
        The shared :class:`CostModel`; a private one is created when
        omitted.  Pass the gateway's model so predictions warm up from
        the same observations the gateway records.
    observe:
        Whether ``finish_request`` feeds actual iteration counts back
        into the model (default).  Disable when another layer (a
        gateway observing through its own completion hook into the same
        shared model) already does, to avoid double-weighting.

    Thread safety
    -------------
    The ledger is guarded by one lock; :meth:`pick`,
    :meth:`begin_request` and :meth:`finish_request` may race from any
    number of submitter and dispatcher threads.
    """

    uses_depths = True

    _GUARDED_BY = {"_outstanding": "_lock"}

    def __init__(
        self,
        replicas: int,
        model: CostModel | None = None,
        observe: bool = True,
    ) -> None:
        super().__init__(replicas)
        self.model = model if model is not None else CostModel()
        self.observe = observe
        self._lock = threading.Lock()
        self._outstanding = [0.0] * replicas

    @property
    def outstanding(self) -> tuple[float, ...]:
        """Predicted iterations currently in flight per replica."""
        with self._lock:
            return tuple(self._outstanding)

    def pick(self, key: object | None, depths: Sequence[int]) -> int:
        """Least predicted outstanding work; ties break on queue depth,
        then on the lowest index (idle fleets fill replica 0 first,
        like the depth-only policy)."""
        with self._lock:
            return min(
                range(self.replicas),
                key=lambda i: (self._outstanding[i], depths[i], i),
            )

    # ------------------------------------------------------------------
    # Cost-feedback protocol (see scheduler.attach_cost_feedback)
    # ------------------------------------------------------------------
    def begin_request(
        self,
        replica: int,
        key: object | None,
        tol: float | None,
        precision: str | None,
    ) -> float:
        """Account one admitted request's predicted cost against
        ``replica``; returns the cost so the completion hook can
        subtract exactly this amount."""
        cost = self.model.predict(key, tol, precision)
        with self._lock:
            self._outstanding[replica] += cost
        return cost

    def finish_request(
        self,
        replica: int,
        cost: float,
        key: object | None,
        tol: float | None,
        precision: str | None,
        iterations: "float | None",
    ) -> None:
        """Release one request's predicted cost; feed the actual
        iteration count (``None`` for failed/cancelled solves, which
        teach the model nothing) back into the model."""
        with self._lock:
            # Clamp at zero: a double-release bug must not turn into a
            # replica that looks infinitely attractive.
            self._outstanding[replica] = max(
                0.0, self._outstanding[replica] - cost
            )
        if self.observe and iterations is not None:
            self.model.observe(key, tol, precision, iterations)
