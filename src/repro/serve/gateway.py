"""The multi-tenant network front door of the serving fleet.

Every tier below this one trusts its caller: :class:`~repro.serve.
service.SolveService` and the shards assume an in-process client that
plays fair, and :class:`~repro.serve.asyncio_front.AsyncSolveService`
only changes the calling convention.  :class:`Gateway` is where the
"millions of users" tier starts — the first layer that *doesn't* trust
the caller, and therefore the layer that owns tenancy:

1. **Authentication** — bearer tokens resolved through a
   :class:`~repro.serve.auth.TenantRegistry` (401 for strangers).
2. **Rate limiting** — per-tenant deterministic token buckets; an
   empty bucket refuses with the exact seconds until refill
   (:class:`~repro.serve.errors.RateLimited`, HTTP 429 +
   ``Retry-After``).
3. **Admission control** — an :class:`~repro.serve.health.
   AdmissionPolicy` sheds load *before* the fleet's own
   ``shed_watermark``, priority-aware (background traffic sheds first,
   interactive last), returning retryable
   :class:`~repro.serve.errors.Overloaded` with a deterministic
   backoff hint instead of queueing the fleet into timeout storms.
4. **Quota accounting** — a :class:`~repro.serve.auth.QuotaLedger`
   charged exactly when a request is handed to the fleet and refunded
   when the fleet itself refuses, so charged totals equal admitted
   work to the unit.
5. **Deadline propagation** — a request's time budget rides the
   existing ``deadline=`` machinery down to the workers *and* is
   enforced gateway-side: a reply that misses its budget is answered
   504 and the underlying ticket is cancelled (drop-only; the staged
   ring slot is reclaimed by the process shard's deadline watchdog).
6. **Cost-predicted scheduling** — completed solves feed a
   :class:`~repro.serve.costmodel.CostModel` (actual iterations per
   ``(tenant, tol, precision)``) and the per-tenant history behind
   :attr:`~repro.serve.stats.StatsSnapshot.tenant_iterations`; share
   the model with a :class:`~repro.serve.costmodel.CostAwareRouter` on
   the backend and routing places requests by *predicted work* instead
   of queue depth.

The protocol layer (:class:`GatewayServer`) is a dependency-free
asyncio HTTP/1.1 + WebSocket server: ``POST /v1/solve`` for one-shot
requests, ``GET /v1/session`` upgrading to an RFC 6455 WebSocket for
long-lived flow-solver sessions (one solve per timestep, pipelined —
requests in one session may resolve out of order and are matched by
client-chosen ``id``), ``GET /v1/healthz`` and ``GET /v1/stats`` for
operators.  Solutions cross the wire as JSON numbers, which round-trip
``float64`` exactly (``repr``-based encoding), so the end-to-end
bit-identity contract — gateway result == sequential warm
:func:`~repro.sem.cg.cg_solve` — holds across the network boundary,
not just in memory.

The core (:class:`Gateway`) is protocol-independent and takes an
injectable clock, so the whole admission pipeline is testable without
sockets and without wall-clock flakiness.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import threading
import time

import numpy as np

from repro.serve.asyncio_front import AsyncSolveService
from repro.serve.auth import QuotaLedger, Tenant, TenantRegistry
from repro.serve.costmodel import CostModel
from repro.serve.errors import (
    AuthError,
    DeadlineExceeded,
    FleetUnavailable,
    Overloaded,
    QuotaExceeded,
    RateLimited,
    ServiceClosed,
)
from repro.serve.health import AdmissionPolicy
from repro.serve.stats import ServiceStats

__all__ = ["Gateway", "GatewayServer"]

#: RFC 6455 magic GUID for the Sec-WebSocket-Accept digest.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Counter names the gateway tracks (in reporting order).
_COUNTERS = (
    "requests", "auth_failures", "rate_limited", "quota_exceeded",
    "shed", "admitted", "completed", "failed", "expired",
)


class Gateway:
    """Protocol-independent multi-tenant admission core.

    Parameters
    ----------
    service:
        The backend — an :class:`~repro.serve.asyncio_front.
        AsyncSolveService`, or any solve service (plain, sharded,
        process-sharded), which is wrapped in one.  The gateway does
        not own the backend's lifecycle unless you close it through
        :meth:`aclose`.
    registry:
        The :class:`~repro.serve.auth.TenantRegistry` of provisioned
        tenants.
    admission:
        The :class:`~repro.serve.health.AdmissionPolicy`; the default
        policy sheds priority-0 load at 8 pending requests per healthy
        replica.  ``None`` disables gateway-side shedding (the fleet's
        own ``shed_watermark`` still applies).
    cost_model:
        The :class:`~repro.serve.costmodel.CostModel` fed by completed
        solves.  Pass the same instance to a backend
        :class:`~repro.serve.costmodel.CostAwareRouter` so routing
        predictions warm up from gateway observations; when the
        backend's router *is* cost-aware and observes on its own, the
        gateway detects it and skips the duplicate model update (the
        per-tenant stats history is recorded either way).
    default_deadline:
        Deadline (seconds) applied to requests that don't carry one;
        ``None`` leaves them unbounded.
    clock:
        Monotonic-seconds callable used for latency stamps; inject a
        fake for deterministic tests.

    Thread safety / loop affinity
    -----------------------------
    :meth:`solve` must run on one event loop (the usual asyncio rule);
    counters are lock-guarded because completion hooks fire on
    dispatcher threads.
    """

    def __init__(
        self,
        service,
        registry: TenantRegistry,
        admission: AdmissionPolicy | None = AdmissionPolicy(),
        cost_model: CostModel | None = None,
        default_deadline: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if isinstance(service, AsyncSolveService):
            self.async_service = service
        else:
            self.async_service = AsyncSolveService(service)
        self.backend = self.async_service.service
        self.registry = registry
        self.admission = admission
        self.cost_model = (
            cost_model if cost_model is not None else CostModel()
        )
        self.default_deadline = default_deadline
        self.clock = clock
        self.ledger = QuotaLedger()
        #: Per-tenant iteration history (the
        #: ``StatsSnapshot.tenant_iterations`` source for this fleet).
        self.tenant_stats = ServiceStats()
        # The backend router observes into its own model when it is
        # cost-aware; observing the same completion into the same model
        # twice would double-weight it.
        router = getattr(self.backend, "_router", None)
        self._router_observes = bool(
            getattr(router, "observe", False)
            and getattr(router, "model", None) is self.cost_model
        )
        # Sharded backends route by key (tenant affinity); a plain
        # SolveService takes no `key` argument at all.
        self._routes_by_key = (
            getattr(self.backend, "queue_depths", None) is not None
        )
        self._lock = threading.Lock()
        self._counters = {name: 0 for name in _COUNTERS}  # guarded-by: _lock
        self._latencies: list[float] = []  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Fleet introspection
    # ------------------------------------------------------------------
    def _fleet_load(self) -> tuple[int, int]:
        """``(total pending requests, healthy replica count)`` of the
        backend, across the tiers' different introspection surfaces."""
        depths = getattr(self.backend, "queue_depths", None)
        if depths is None:
            total = int(getattr(self.backend, "queue_depth", 0))
            replicas = 1
        else:
            total = int(sum(depths))
            replicas = len(depths)
        health = getattr(self.backend, "health", None)
        healthy = replicas if health is None else health.healthy_count
        return total, healthy

    def healthz(self) -> dict:
        """Liveness/readiness payload (no auth required)."""
        total, healthy = self._fleet_load()
        depths = getattr(self.backend, "queue_depths", None)
        replicas = 1 if depths is None else len(depths)
        return {
            "status": "ok" if healthy > 0 else "unavailable",
            "healthy_replicas": healthy,
            "replicas": replicas,
            "pending": total,
        }

    @property
    def counters(self) -> dict[str, int]:
        """Point-in-time copy of the gateway counters."""
        with self._lock:
            return dict(self._counters)

    def latencies(self) -> tuple[float, ...]:
        """Gateway-observed latency (clock units) of every completed
        request, in completion order — the soak harness's p99 source."""
        with self._lock:
            return tuple(self._latencies)

    def stats_payload(self) -> dict:
        """The ``/v1/stats`` document: gateway counters, quota totals,
        per-tenant iteration history, and the backend fleet summary."""
        fleet = self.backend.stats
        history = self.tenant_stats.snapshot().tenant_iterations
        return {
            "gateway": self.counters,
            "quota_charged": self.ledger.totals(),
            "tenant_iterations": [
                {
                    "tenant": tenant,
                    "tol": tol,
                    "precision": precision,
                    "count": count,
                    "iterations_sum": total,
                }
                for (tenant, tol, precision), (count, total)
                in sorted(history.items(), key=repr)
            ],
            "fleet": {
                "submitted": fleet.submitted,
                "completed": fleet.completed,
                "failed": fleet.failed,
                "expired": fleet.expired,
                "shed": fleet.shed,
                "queue_depth": fleet.queue_depth,
                "copy_bytes": fleet.copy_bytes,
                "solves_per_second": fleet.solves_per_second,
            },
        }

    def _count(self, name: str) -> None:
        with self._lock:
            self._counters[name] += 1

    # ------------------------------------------------------------------
    # The admission pipeline
    # ------------------------------------------------------------------
    def admit(
        self,
        token: str | None,
        priority: int | None = None,
    ) -> tuple[Tenant, int]:
        """Run the pre-submit pipeline for one request: authenticate,
        rate-limit, shed, charge quota.

        Returns ``(tenant, effective_priority)`` on admission, with the
        quota already charged (callers that then fail to hand the
        request to the fleet must :meth:`refund`).  The effective
        priority is the requested one capped by the tenant's
        provisioned :attr:`~repro.serve.auth.Tenant.priority` — tenants
        cannot self-declare importance.

        Raises
        ------
        ~repro.serve.errors.AuthError
            Unknown/missing token.
        ~repro.serve.errors.RateLimited
            Token bucket empty (``retry_after`` carries the refill
            time).
        ~repro.serve.errors.Overloaded
            Admission policy shed the request (``retry_after`` carries
            the backoff hint).
        ~repro.serve.errors.QuotaExceeded
            The tenant's admitted-work quota is exhausted.
        """
        self._count("requests")
        try:
            tenant = self.registry.authenticate(token)
        except AuthError:
            self._count("auth_failures")
            raise
        requested = tenant.priority if priority is None else int(priority)
        effective = min(requested, tenant.priority)
        if self.admission is not None:
            effective = self.admission.clamp_priority(effective)
        bucket = self.registry.bucket(tenant)
        if bucket is not None:
            ok, retry_after = bucket.acquire()
            if not ok:
                self._count("rate_limited")
                raise RateLimited(
                    f"tenant {tenant.tenant_id!r} exceeded its rate of "
                    f"{tenant.rate}/s; retry in {retry_after:.3f}s",
                    retry_after,
                )
        if self.admission is not None:
            total, healthy = self._fleet_load()
            if self.admission.should_shed(total, healthy, effective):
                self._count("shed")
                error = Overloaded(
                    f"gateway shed priority-{effective} request: "
                    f"{total} pending across {healthy} healthy "
                    "replica(s); retry after backoff"
                )
                error.retry_after = self.admission.retry_after(
                    total, healthy, effective
                )
                raise error
        try:
            self.ledger.charge(tenant)
        except QuotaExceeded:
            self._count("quota_exceeded")
            raise
        return tenant, effective

    def refund(self, tenant: Tenant) -> None:
        """Return one quota charge for a request the fleet refused
        after :meth:`admit` (keeps charged == admitted exact)."""
        self.ledger.refund(tenant)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def solve(
        self,
        token: str | None,
        b,
        tol: float | None = None,
        maxiter: int | None = None,
        deadline: float | None = None,
        precision: str | None = None,
        priority: int | None = None,
    ):
        """Serve one authenticated solve end to end.

        Parameters
        ----------
        token:
            The tenant's bearer token.
        b:
            Right-hand side, shape ``(n_dofs,)``.
        tol / maxiter / precision:
            Per-request solve knobs (service defaults apply when
            omitted), validated by the backend at submit.
        deadline:
            Time budget in seconds; defaults to the gateway's
            ``default_deadline``.  Propagated into the fleet's
            ``deadline=`` machinery *and* enforced here: a reply that
            misses the budget raises
            :class:`~repro.serve.errors.DeadlineExceeded` and the
            underlying ticket is cancelled (drop-only — its batch is
            undisturbed; a staged ring slot is reclaimed by the
            process shard's watchdog).
        priority:
            Requested priority, capped by the tenant's provisioned
            priority.

        Returns
        -------
        ~repro.sem.cg.CGResult
            Bit-identical to a sequential warm solve of the same
            system.
        """
        tenant, effective = self.admit(token, priority)
        if deadline is None:
            deadline = self.default_deadline
        start = self.clock()
        try:
            future = await self.async_service.submit(
                b, tol=tol, maxiter=maxiter,
                key=tenant.tenant_id if self._routes_by_key else None,
                deadline=deadline, precision=precision,
            )
        except (Overloaded, FleetUnavailable, ServiceClosed):
            # The fleet itself refused after the charge: the work was
            # never admitted, so the quota must not count it.
            self.refund(tenant)
            raise
        except BaseException:
            self.refund(tenant)
            raise
        self._count("admitted")
        try:
            if deadline is not None:
                result = await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline
                )
            else:
                result = await future
        except (TimeoutError, asyncio.TimeoutError):
            # Gateway-side expiry: disown the request.  Cancelling the
            # ticket (not just the future) is what lets the process
            # shard's watchdog reclaim the staged ring slot of a
            # request that will never be read.
            ticket = getattr(future, "solve_ticket", None)
            if ticket is not None:
                ticket.cancel()
            future.cancel()
            self._count("expired")
            raise DeadlineExceeded(
                f"no reply within the {deadline:.3f}s budget; the "
                "request was disowned"
            ) from None
        except DeadlineExceeded:
            self._count("expired")
            raise
        except BaseException:
            self._count("failed")
            raise
        self._count("completed")
        elapsed = self.clock() - start
        with self._lock:
            self._latencies.append(elapsed)
        iterations = getattr(result, "iterations", None)
        if iterations is not None:
            self.tenant_stats.record_tenant(
                tenant.tenant_id, tol, precision, iterations
            )
            if not self._router_observes:
                self.cost_model.observe(
                    tenant.tenant_id, tol, precision, iterations
                )
        return result

    async def aclose(self) -> None:
        """Drain and close the backend (via the async facade)."""
        await self.async_service.aclose()


# ----------------------------------------------------------------------
# Wire protocol: HTTP/1.1 + WebSocket, stdlib only
# ----------------------------------------------------------------------
class _HTTPRequest:
    """One parsed HTTP/1.1 request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def bearer_token(self) -> str | None:
        auth = self.headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return None


async def _read_http_request(
    reader: asyncio.StreamReader, max_body: int
) -> _HTTPRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {line!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    if length > max_body:
        raise ValueError(
            f"request body of {length} bytes exceeds the "
            f"{max_body}-byte limit"
        )
    body = await reader.readexactly(length) if length else b""
    return _HTTPRequest(method, path, headers, body)


def _http_response(
    status: int,
    payload: dict,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    reasons = {
        200: "OK", 400: "Bad Request", 401: "Unauthorized",
        404: "Not Found", 429: "Too Many Requests",
        500: "Internal Server Error", 503: "Service Unavailable",
        504: "Gateway Timeout",
    }
    body = json.dumps(payload).encode()
    headers = [
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


def _error_payload(exc: BaseException) -> tuple[int, dict, dict]:
    """Map a taxonomy error to ``(status, body, extra_headers)``.

    Clients see exactly two shapes of refusal: retryable (429/503 with
    a ``Retry-After`` hint where one exists) and terminal (400/401/
    429-quota/504) — never an internal error class name they'd have to
    parse.
    """
    retry_headers: dict[str, str] = {}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        retry_headers["Retry-After"] = f"{max(retry_after, 0.0):.3f}"
    if isinstance(exc, AuthError):
        return 401, {"error": "unauthenticated", "detail": str(exc)}, {}
    if isinstance(exc, RateLimited):
        return 429, {
            "error": "rate_limited", "retryable": True,
            "detail": str(exc),
        }, retry_headers
    if isinstance(exc, QuotaExceeded):
        return 429, {
            "error": "quota_exceeded", "retryable": False,
            "detail": str(exc),
        }, {}
    if isinstance(exc, Overloaded):
        return 429, {
            "error": "overloaded", "retryable": True,
            "detail": str(exc),
        }, retry_headers
    if isinstance(exc, FleetUnavailable):
        return 503, {
            "error": "fleet_unavailable", "retryable": True,
            "detail": str(exc),
        }, retry_headers
    if isinstance(exc, ServiceClosed):
        return 503, {
            "error": "service_closed", "retryable": False,
            "detail": str(exc),
        }, {}
    if isinstance(exc, DeadlineExceeded):
        return 504, {
            "error": "deadline_exceeded", "retryable": False,
            "detail": str(exc),
        }, {}
    if isinstance(exc, (ValueError, KeyError, TypeError)):
        return 400, {"error": "bad_request", "detail": str(exc)}, {}
    return 500, {"error": "internal", "detail": str(exc)}, {}


def _result_payload(result) -> dict:
    """JSON-encode one solve outcome.  JSON numbers round-trip float64
    exactly, so the bit-identity contract survives the wire."""
    payload = {
        "x": np.asarray(result.x).tolist(),
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
        "residual_norm": float(result.residual_norm),
    }
    sweeps = getattr(result, "sweeps", None)
    if sweeps is not None:
        payload["sweeps"] = int(sweeps)
    return payload


def _solve_kwargs(doc: dict) -> dict:
    """Extract/validate the solve knobs of one request document."""
    if not isinstance(doc, dict):
        raise ValueError("request body must be a JSON object")
    if "b" not in doc:
        raise ValueError("request is missing the rhs field 'b'")
    b = np.asarray(doc["b"], dtype=np.float64)
    kwargs = {"b": b}
    for knob, caster in (
        ("tol", float), ("maxiter", int), ("deadline", float),
        ("priority", int),
    ):
        if doc.get(knob) is not None:
            kwargs[knob] = caster(doc[knob])
    if doc.get("precision") is not None:
        kwargs["precision"] = str(doc["precision"])
    return kwargs


class GatewayServer:
    """Asyncio TCP front end speaking HTTP/1.1 + WebSocket.

    Endpoints
    ---------
    ``POST /v1/solve``
        One-shot solve.  JSON body ``{"b": [...], "tol":?, "maxiter":?,
        "deadline":?, "precision":?, "priority":?}``; bearer token in
        ``Authorization``.  200 with the solution, or the error shapes
        of :func:`_error_payload`.
    ``GET /v1/session``
        WebSocket upgrade (authenticated at the handshake).  Each text
        frame carries the same document plus a client-chosen ``"id"``;
        replies carry the ``id`` back.  Solves are pipelined — frames
        are served concurrently and may resolve out of order, which is
        what a flow-solver tenant streaming one solve per timestep
        wants.  Per-message errors come back as normal replies with an
        ``"error"`` field; the session survives them.
    ``GET /v1/healthz``
        Unauthenticated liveness (``status``/``healthy_replicas``).
    ``GET /v1/stats``
        Authenticated operator stats (gateway counters, quota totals,
        per-tenant iteration history, fleet summary).

    Parameters
    ----------
    gateway:
        The :class:`Gateway` core.
    host / port:
        Bind address; port 0 (the default) picks a free one — read
        :attr:`port` after :meth:`start`.
    max_body:
        Request body size limit in bytes.
    """

    def __init__(
        self,
        gateway: Gateway,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body: int = 8 << 20,
    ) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        self.max_body = max_body
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "GatewayServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "GatewayServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_http_request(
                        reader, self.max_body
                    )
                except ValueError as exc:
                    status, body, extra = _error_payload(exc)
                    writer.write(_http_response(status, body, extra))
                    await writer.drain()
                    break
                if request is None:
                    break
                if (
                    request.path == "/v1/session"
                    and "upgrade"
                    in request.headers.get("connection", "").lower()
                ):
                    await self._handle_websocket(
                        request, reader, writer
                    )
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if (
                    request.headers.get("connection", "").lower()
                    == "close"
                ):
                    break
        except (
            ConnectionError, asyncio.IncompleteReadError, OSError
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: _HTTPRequest) -> bytes:
        route = (request.method, request.path)
        if route == ("GET", "/v1/healthz"):
            return _http_response(200, self.gateway.healthz())
        if route == ("GET", "/v1/stats"):
            try:
                self.gateway.registry.authenticate(
                    request.bearer_token()
                )
            except AuthError as exc:
                status, body, extra = _error_payload(exc)
                return _http_response(status, body, extra)
            return _http_response(200, self.gateway.stats_payload())
        if route == ("POST", "/v1/solve"):
            try:
                doc = json.loads(request.body.decode() or "{}")
                kwargs = _solve_kwargs(doc)
            except (ValueError, TypeError, KeyError) as exc:
                # 401 outranks 400: an unauthenticated caller learns
                # nothing about the request schema.
                try:
                    self.gateway.registry.authenticate(
                        request.bearer_token()
                    )
                except AuthError as auth_exc:
                    exc = auth_exc
                status, body, extra = _error_payload(exc)
                return _http_response(status, body, extra)
            try:
                result = await self.gateway.solve(
                    request.bearer_token(), **kwargs
                )
            except BaseException as exc:  # mapped, never swallowed
                status, body, extra = _error_payload(exc)
                return _http_response(status, body, extra)
            return _http_response(200, _result_payload(result))
        return _http_response(
            404,
            {"error": "not_found", "detail": request.path},
        )

    # ------------------------------------------------------------------
    # WebSocket sessions (RFC 6455, server side, no extensions)
    # ------------------------------------------------------------------
    async def _handle_websocket(
        self,
        request: _HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.headers.get("sec-websocket-key")
        if not key:
            writer.write(_http_response(
                400,
                {"error": "bad_request",
                 "detail": "missing Sec-WebSocket-Key"},
            ))
            await writer.drain()
            return
        # Authenticate at the handshake: a stranger never gets a
        # socket to spray frames at.
        token = request.bearer_token()
        try:
            self.gateway.registry.authenticate(token)
        except AuthError as exc:
            status, body, extra = _error_payload(exc)
            writer.write(_http_response(status, body, extra))
            await writer.drain()
            return
        accept = base64.b64encode(hashlib.sha1(
            (key + _WS_GUID).encode()
        ).digest()).decode()
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
        ).encode())
        await writer.drain()
        send_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()

        async def send(opcode: int, payload: bytes) -> None:
            async with send_lock:
                writer.write(_ws_frame(opcode, payload))
                await writer.drain()

        async def serve_one(doc: dict) -> None:
            reply = {"id": doc.get("id")}
            try:
                kwargs = _solve_kwargs(doc)
                result = await self.gateway.solve(token, **kwargs)
            except BaseException as exc:
                status, body, _extra = _error_payload(exc)
                reply.update(body)
                reply["status"] = status
            else:
                reply.update(_result_payload(result))
                reply["status"] = 200
            await send(0x1, json.dumps(reply).encode())

        try:
            while True:
                try:
                    opcode, payload = await _ws_read_frame(reader)
                except (
                    asyncio.IncompleteReadError, ConnectionError
                ):
                    break
                if opcode == 0x8:  # close
                    await send(0x8, payload[:2])
                    break
                if opcode == 0x9:  # ping -> pong
                    await send(0xA, payload)
                    continue
                if opcode != 0x1:  # only text frames carry requests
                    continue
                try:
                    doc = json.loads(payload.decode())
                except ValueError:
                    await send(0x1, json.dumps({
                        "id": None, "status": 400,
                        "error": "bad_request",
                        "detail": "frame is not valid JSON",
                    }).encode())
                    continue
                # Pipelined: each frame solves concurrently; replies
                # carry the client's id and may arrive out of order.
                task = asyncio.ensure_future(serve_one(doc))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        finally:
            if inflight:
                await asyncio.gather(
                    *inflight, return_exceptions=True
                )


def _ws_frame(opcode: int, payload: bytes) -> bytes:
    """One unmasked server->client frame (FIN set, no fragmentation)."""
    header = bytes([0x80 | opcode])
    n = len(payload)
    if n < 126:
        header += bytes([n])
    elif n < 1 << 16:
        header += bytes([126]) + n.to_bytes(2, "big")
    else:
        header += bytes([127]) + n.to_bytes(8, "big")
    return header + payload


async def _ws_read_frame(
    reader: asyncio.StreamReader,
) -> tuple[int, bytes]:
    """Read one (unfragmented) frame; unmasks client payloads."""
    head = await reader.readexactly(2)
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    mask = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if mask:
        payload = bytes(
            byte ^ mask[i & 3] for i, byte in enumerate(payload)
        )
    return opcode, payload
