"""Dynamic micro-batching queue: coalesce requests into stacked blocks.

The core serving trade-off (Karp et al.'s host-device flow, and every
inference server since): latency wants each request dispatched the
moment it arrives, throughput wants requests stacked so one warm batched
solve amortizes geometry traffic and dispatch overhead across all of
them.  :class:`MicroBatcher` implements the standard compromise — a
dispatch fires as soon as ``max_batch`` requests are pending, or
``max_wait`` seconds after the oldest pending request arrived, whichever
comes first.

The batcher is a plain thread-safe data structure (one condition
variable, one deque); the policy loop that calls :meth:`take_batch`
lives in :class:`~repro.serve.service.SolveService`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")


class QueueClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.put` after :meth:`MicroBatcher.close`."""


class MicroBatcher(Generic[T]):
    """Bounded request queue with coalescing (batch-at-a-time) pops.

    Parameters
    ----------
    max_batch:
        Largest number of items a single :meth:`take_batch` returns.
    max_wait:
        Seconds :meth:`take_batch` lingers after the first pending item
        for more to coalesce.  ``0.0`` pops whatever is pending
        immediately (pure opportunistic batching).
    max_pending:
        Backpressure bound: :meth:`put` blocks while this many items are
        queued.  ``None`` leaves the queue unbounded (the synchronous
        front-end drains inline, so it cannot grow past ``max_batch``
        there).
    """

    def __init__(
        self,
        max_batch: int,
        max_wait: float = 0.0,
        max_pending: int | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_pending is not None and max_pending < max_batch:
            raise ValueError(
                f"max_pending ({max_pending}) must be >= max_batch "
                f"({max_batch}) or the queue could never fill a batch"
            )
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.max_pending = max_pending
        # Each entry carries its arrival time so the linger deadline is
        # anchored to the *oldest pending request*, not to whenever the
        # dispatcher got around to looking.
        self._items: deque[tuple[float, T]] = deque()
        self._cond = threading.Condition()
        self._closed = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: T) -> int:
        """Enqueue one item, blocking while the queue is at capacity.

        Returns the queue depth including the new item.  Raises
        :class:`QueueClosed` if the batcher has been closed (including
        while blocked on backpressure).
        """
        with self._cond:
            while (
                not self._closed
                and self.max_pending is not None
                and len(self._items) >= self.max_pending
            ):
                self._cond.wait()
            if self._closed:
                raise QueueClosed("submit on a closed solve service")
            self._items.append((time.monotonic(), item))
            self._cond.notify_all()
            return len(self._items)

    def take_batch(self) -> list[T]:
        """Block until a batch is ready and pop up to ``max_batch`` items.

        A batch is ready when ``max_batch`` items are pending, or the
        oldest pending item has waited ``max_wait`` since it was
        enqueued (so time the dispatcher spent solving the previous
        batch counts against the linger), or the batcher is closed
        (drain mode).  Returns ``[]`` only when closed *and* empty —
        the dispatcher's exit signal.
        """
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            while (
                self._items
                and len(self._items) < self.max_batch
                and not self._closed
            ):
                # Linger for stragglers: this is the "dynamic" in
                # dynamic micro-batching.  The deadline is the oldest
                # item's arrival + max_wait, the documented per-request
                # latency bound.
                remaining = self._items[0][0] + self.max_wait \
                    - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch = [
                self._items.popleft()[1]
                for _ in range(min(self.max_batch, len(self._items)))
            ]
            if batch:
                # Space freed: wake producers blocked on backpressure.
                self._cond.notify_all()
            return batch

    def take_batch_nowait(self) -> list[T]:
        """Pop up to ``max_batch`` pending items without blocking.

        The synchronous front-end's drain primitive: returns ``[]``
        immediately when nothing is pending.
        """
        with self._cond:
            batch = [
                self._items.popleft()[1]
                for _ in range(min(self.max_batch, len(self._items)))
            ]
            if batch:
                self._cond.notify_all()
            return batch

    def close(self) -> None:
        """Stop accepting new items; pending items remain poppable.

        Producers blocked in :meth:`put` are woken and raise
        :class:`QueueClosed`; :meth:`take_batch` keeps returning pending
        batches until the queue is drained, then returns ``[]``.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
