"""Dynamic micro-batching queue: coalesce requests into stacked blocks.

The core serving trade-off (Karp et al.'s host-device flow, and every
inference server since): latency wants each request dispatched the
moment it arrives, throughput wants requests stacked so one warm batched
solve amortizes geometry traffic and dispatch overhead across all of
them.  :class:`MicroBatcher` implements the standard compromise — a
dispatch fires as soon as ``max_batch`` requests are pending, or
``max_wait`` seconds after the oldest pending request arrived, whichever
comes first.

The batcher is a plain thread-safe data structure (one condition
variable, one deque); the policy loop that calls :meth:`take_batch`
lives in :class:`~repro.serve.service.SolveService`.

This module also hosts the *routing* policies of the sharded service
(:class:`~repro.serve.shard.ShardedSolveService`): given ``K`` replica
queues, a :class:`Router` decides which replica a request lands on —
:class:`TenantRouter` (consistent hashing, so one tenant's requests
always meet in the same queue and coalesce into the same batches),
:class:`LeastLoadedRouter` (live queue depths), and
:class:`RoundRobinRouter`.  Routers are small, thread-safe, and
stateless apart from their own counters, so one instance serves any
number of concurrent submitters.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from collections import deque
from typing import Generic, Sequence, TypeVar

# QueueClosed/ServiceClosed moved to repro.serve.errors (the shared
# failure taxonomy); re-exported here because this module is their
# historical home and callers import them from it.
from repro.analysis.runtime import race_checked
from repro.serve.errors import FleetUnavailable, QueueClosed, ServiceClosed

T = TypeVar("T")

__all__ = [
    "MicroBatcher",
    "QueueClosed",
    "ServiceClosed",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "TenantRouter",
    "ROUTING_POLICIES",
    "resolve_router",
    "pick_with_diversion",
    "attach_cost_feedback",
]


class MicroBatcher(Generic[T]):
    """Bounded request queue with coalescing (batch-at-a-time) pops.

    Parameters
    ----------
    max_batch:
        Largest number of items a single :meth:`take_batch` returns.
    max_wait:
        Seconds :meth:`take_batch` lingers after the first pending item
        for more to coalesce.  ``0.0`` pops whatever is pending
        immediately (pure opportunistic batching).
    max_pending:
        Backpressure bound: :meth:`put` blocks while this many items are
        queued.  ``None`` leaves the queue unbounded (the synchronous
        front-end drains inline, so it cannot grow past ``max_batch``
        there).

    Thread safety
    -------------
    Fully thread-safe: every method takes the single internal condition
    variable, so any number of producers (``put``) and consumers
    (``take_batch`` / ``take_batch_nowait``) may run concurrently.
    ``len(batcher)`` is an instantaneous sample, valid the moment it is
    read.
    """

    def __init__(
        self,
        max_batch: int,
        max_wait: float = 0.0,
        max_pending: int | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_pending is not None and max_pending < max_batch:
            raise ValueError(
                f"max_pending ({max_pending}) must be >= max_batch "
                f"({max_batch}) or the queue could never fill a batch"
            )
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.max_pending = max_pending
        # Each entry carries its arrival time so the linger deadline is
        # anchored to the *oldest pending request*, not to whenever the
        # dispatcher got around to looking.
        self._items: deque[tuple[float, T]] = deque()  # guarded-by: _cond
        self._cond = threading.Condition()
        self._closed = False  # guarded-by: _cond

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        # Deliberate lock-free sample: len() of a deque is one atomic
        # word read, and callers treat the depth as instantly stale.
        return len(self._items)  # lint: ignore[lock-discipline] -- atomic depth sample

    @property
    def closed(self) -> bool:
        # Same single-word-read argument as __len__.
        return self._closed  # lint: ignore[lock-discipline] -- atomic flag sample

    def put(self, item: T) -> int:
        """Enqueue one item, blocking while the queue is at capacity.

        Parameters
        ----------
        item:
            The request to enqueue; stamped with its arrival time so the
            linger deadline anchors to the oldest pending item.

        Returns
        -------
        int
            The queue depth including the new item.

        Raises
        ------
        ServiceClosed
            If the batcher has been closed (including while blocked on
            backpressure).
        """
        with self._cond:
            while (
                not self._closed
                and self.max_pending is not None
                and len(self._items) >= self.max_pending
            ):
                self._cond.wait()
            if self._closed:
                raise ServiceClosed("submit on a closed solve service")
            self._items.append((time.monotonic(), item))
            self._cond.notify_all()
            return len(self._items)

    def put_many(self, items: "Sequence[T]") -> int:
        """Enqueue several items under one lock acquisition.

        The bulk twin of :meth:`put` for block ingest (the process
        shard ships requests in blocks): consumers are notified once
        per call instead of once per item, so a dispatcher lingering
        for a batch wakes when the block is in rather than after every
        element.  Blocks for backpressure exactly as :meth:`put` does —
        item by item, so consumers draining the queue unblock the rest
        of the block.

        Parameters
        ----------
        items:
            The requests to enqueue, in order.

        Returns
        -------
        int
            The queue depth including the new items.

        Raises
        ------
        ServiceClosed
            If the batcher is (or becomes) closed.  Items already
            enqueued by then stay queued and will be drained; the
            exception's ``enqueued`` attribute says how many made it,
            so the caller can settle the stragglers' tickets.
        """
        with self._cond:
            enqueued = 0
            for item in items:
                while (
                    not self._closed
                    and self.max_pending is not None
                    and len(self._items) >= self.max_pending
                ):
                    # No notify here: a full queue means items are
                    # present, so no consumer is parked on the empty
                    # wait (and notifying would just ping-pong blocked
                    # producers awake against each other).
                    self._cond.wait()
                if self._closed:
                    if enqueued:
                        self._cond.notify_all()
                    error = ServiceClosed(
                        "submit on a closed solve service"
                    )
                    error.enqueued = enqueued
                    raise error
                self._items.append((time.monotonic(), item))
                enqueued += 1
            self._cond.notify_all()
            return len(self._items)

    def take_batch(self) -> list[T]:
        """Block until a batch is ready and pop up to ``max_batch`` items.

        A batch is ready when ``max_batch`` items are pending, or the
        oldest pending item has waited ``max_wait`` since it was
        enqueued (so time the dispatcher spent solving the previous
        batch counts against the linger), or the batcher is closed
        (drain mode).

        Returns
        -------
        list
            Up to ``max_batch`` items in arrival order; ``[]`` only
            when closed *and* empty — the dispatcher's exit signal.
        """
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            while (
                self._items
                and len(self._items) < self.max_batch
                and not self._closed
            ):
                # Linger for stragglers: this is the "dynamic" in
                # dynamic micro-batching.  The deadline is the oldest
                # item's arrival + max_wait, the documented per-request
                # latency bound.
                remaining = self._items[0][0] + self.max_wait \
                    - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch = [
                self._items.popleft()[1]
                for _ in range(min(self.max_batch, len(self._items)))
            ]
            if batch:
                # Space freed: wake producers blocked on backpressure.
                self._cond.notify_all()
            return batch

    def take_batch_nowait(self) -> list[T]:
        """Pop up to ``max_batch`` pending items without blocking.

        The synchronous front-end's drain primitive.

        Returns
        -------
        list
            Up to ``max_batch`` items in arrival order; ``[]``
            immediately when nothing is pending.
        """
        with self._cond:
            batch = [
                self._items.popleft()[1]
                for _ in range(min(self.max_batch, len(self._items)))
            ]
            if batch:
                self._cond.notify_all()
            return batch

    def close(self) -> None:
        """Stop accepting new items; pending items remain poppable.

        Producers blocked in :meth:`put` are woken and raise
        :class:`ServiceClosed`; :meth:`take_batch` keeps returning pending
        batches until the queue is drained, then returns ``[]``.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()


# ----------------------------------------------------------------------
# Shard routing policies
# ----------------------------------------------------------------------
class Router:
    """Base class of the shard routing policies.

    A router maps one request onto one of ``replicas`` queues.  The
    sharded service calls :meth:`pick` on every submit, passing the
    request's routing key (may be ``None``) and the live per-replica
    queue depths.

    Thread safety
    -------------
    :meth:`pick` may be called from any number of client threads
    concurrently; subclasses guard their mutable state (the round-robin
    cursor) with a lock.  The ``depths`` argument is a point-in-time
    sample — a router must tolerate it being slightly stale.

    Attributes
    ----------
    uses_depths:
        Whether :meth:`pick` reads ``depths``.  Policies that don't
        (round-robin, keyed tenant picks) advertise ``False`` so the
        sharded service can skip sampling every replica queue — K lock
        acquisitions — on the hot submit path.  Defaults to ``True``
        (custom routers are assumed to want depths unless they opt
        out).
    """

    #: Conservative default: unknown subclasses get real depths.
    uses_depths: bool = True

    def __init__(self, replicas: int) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas

    def pick(self, key: object | None, depths: Sequence[int]) -> int:
        """Choose the replica index for one request.

        Parameters
        ----------
        key:
            The request's routing key (tenant id); ``None`` when the
            caller didn't supply one.
        depths:
            Live queue depth of each replica, ``len(depths) ==
            replicas``.

        Returns
        -------
        int
            Replica index in ``[0, replicas)``.
        """
        raise NotImplementedError


@race_checked
class RoundRobinRouter(Router):
    """Cycle through the replicas in submission order.

    The baseline policy: perfectly even spread, no affinity — a tenant's
    consecutive requests land on different replicas, so they batch with
    strangers rather than with each other.
    """

    uses_depths = False

    _GUARDED_BY = {"_next": "_lock"}

    def __init__(self, replicas: int) -> None:
        super().__init__(replicas)
        self._lock = threading.Lock()
        self._next = 0

    def pick(self, key: object | None, depths: Sequence[int]) -> int:
        """Return the next replica in rotation (keys are ignored)."""
        with self._lock:
            chosen = self._next
            self._next = (chosen + 1) % self.replicas
            return chosen


class LeastLoadedRouter(Router):
    """Route each request to the replica with the shallowest queue.

    Balances instantaneous load: a replica stalled on a slow batch
    accumulates depth and stops receiving new work until it drains.
    Ties break toward the lowest replica index, so an idle fleet fills
    replica 0 first (keeping partial batches together instead of
    spraying single-request batches across all replicas).
    """

    def pick(self, key: object | None, depths: Sequence[int]) -> int:
        """Return the index of the minimum entry of ``depths``."""
        return min(range(self.replicas), key=depths.__getitem__)


class TenantRouter(Router):
    """Consistent-hash routing: one tenant's requests share one replica.

    The serving win of sharding comes from *affinity*: requests that
    coalesce well (same tenant, similar tolerances, arriving together)
    should meet in the same replica's queue.  The router hashes the
    request key onto a ring of ``vnodes`` virtual points per replica
    (the classic consistent-hashing construction), so

    * the same key always lands on the same replica — its requests
      batch together, and
    * resizing the fleet remaps only ``~1/K`` of the keyspace instead
      of reshuffling every tenant (the ring, not ``hash % K``, is what
      buys this).

    The hash is :func:`hashlib.blake2b` over the key's stable byte
    encoding — deliberately *not* Python's builtin ``hash``, whose
    per-process salting (``PYTHONHASHSEED``) would move every tenant on
    restart.

    Parameters
    ----------
    replicas:
        Number of replica queues.
    vnodes:
        Virtual points per replica on the ring; more points smooth the
        keyspace split across replicas.
    fallback:
        Policy for requests submitted *without* a key; defaults to a
        private :class:`RoundRobinRouter`.
    """

    def __init__(
        self,
        replicas: int,
        vnodes: int = 64,
        fallback: Router | None = None,
    ) -> None:
        super().__init__(replicas)
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        ring = [
            (_stable_hash(f"replica-{r}:vnode-{v}"), r)
            for r in range(replicas)
            for v in range(vnodes)
        ]
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [owner for _, owner in ring]
        self._fallback = fallback or RoundRobinRouter(replicas)
        # Keyed picks never read depths; keyless ones defer to the
        # fallback, so depth sampling is only worth it if IT wants them.
        self.uses_depths = self._fallback.uses_depths

    def pick(self, key: object | None, depths: Sequence[int]) -> int:
        """Return the ring owner of ``key`` (fallback policy if ``None``)."""
        if key is None:
            return self._fallback.pick(None, depths)
        idx = bisect.bisect_right(self._points, _stable_hash(key))
        if idx == len(self._points):  # wrap past the last ring point
            idx = 0
        return self._owners[idx]


def _stable_hash(key: object) -> int:
    """A process-stable 64-bit hash of an arbitrary routing key.

    ``bytes`` keys hash as-is, ``str`` by UTF-8 encoding, everything
    else through ``repr`` (stable for ints, tuples of ints/strs, and
    the usual tenant-id shapes).
    """
    if isinstance(key, bytes):
        raw = key
    elif isinstance(key, str):
        raw = key.encode("utf-8")
    else:
        raw = repr(key).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(raw, digest_size=8).digest(), "big")


#: Routing policy names accepted by the sharded service.
ROUTING_POLICIES: tuple[str, ...] = (
    "tenant", "least-loaded", "round-robin", "cost",
)


def resolve_router(
    policy: "str | Router", replicas: int
) -> Router:
    """Turn a policy name (or a ready :class:`Router`) into a router.

    Parameters
    ----------
    policy:
        ``"tenant"``, ``"least-loaded"``, ``"round-robin"``, ``"cost"``
        (predicted-work placement —
        :class:`~repro.serve.costmodel.CostAwareRouter` over a private
        :class:`~repro.serve.costmodel.CostModel`; construct the router
        yourself to share a model with a gateway), or an
        already-constructed :class:`Router` (which must be sized for
        ``replicas``).
    replicas:
        Number of replica queues the router will address.

    Returns
    -------
    Router
        The routing policy instance.

    Raises
    ------
    ValueError
        For an unknown policy name or a :class:`Router` instance sized
        for a different replica count.
    """
    if isinstance(policy, Router):
        if policy.replicas != replicas:
            raise ValueError(
                f"router is sized for {policy.replicas} replicas, "
                f"service has {replicas}"
            )
        return policy
    if policy == "tenant":
        return TenantRouter(replicas)
    if policy == "least-loaded":
        return LeastLoadedRouter(replicas)
    if policy == "round-robin":
        return RoundRobinRouter(replicas)
    if policy == "cost":
        # Local import: costmodel imports Router from this module.
        from repro.serve.costmodel import CostAwareRouter

        return CostAwareRouter(replicas)
    raise ValueError(
        f"unknown routing policy {policy!r}; expected one of "
        f"{ROUTING_POLICIES} or a Router instance"
    )


def attach_cost_feedback(
    router: Router,
    ticket,
    chosen: int,
    key: object | None,
    tol: float | None,
    precision: str | None,
) -> None:
    """Wire one admitted request into the router's cost-feedback loop.

    The shard tiers call this right after a routed submit is accepted.
    Routers that implement the duck-typed cost protocol
    (``begin_request``/``finish_request`` — see
    :class:`~repro.serve.costmodel.CostAwareRouter`) get the request's
    predicted cost charged against ``chosen`` immediately, and a
    done-callback on the ticket releases exactly that charge when the
    solve completes — feeding the actual iteration count back into the
    model when there is one (failed or cancelled tickets teach it
    nothing).  Every pre-existing router lacks the protocol and is
    skipped at the cost of one ``getattr``.

    A request the process shard retries onto a *different* worker keeps
    its charge on the original pick — the ledger is a routing signal,
    not an audit, and crash retries are rare enough that a briefly
    misattributed in-flight cost is noise the next completions wash
    out.
    """
    begin = getattr(router, "begin_request", None)
    if begin is None:
        return
    cost = begin(chosen, key, tol, precision)
    finish = router.finish_request

    def _release(done) -> None:
        iterations = None
        if not done.cancelled():
            error = done.exception()  # non-blocking: ticket is done
            if error is None:
                iterations = getattr(
                    done.result(), "iterations", None
                )
        finish(chosen, cost, key, tol, precision, iterations)

    ticket.add_done_callback(_release)


def _least_loaded_healthy(
    depths: Sequence[int], healthy: Sequence[bool]
) -> int:
    """Index of the shallowest queue among the healthy targets
    (ties break low, matching :class:`LeastLoadedRouter`)."""
    return min(
        (i for i in range(len(healthy)) if healthy[i]),
        key=depths.__getitem__,
    )


def pick_with_diversion(
    router: Router,
    fallback: Router,
    key: object | None,
    depths: Sequence[int],
    queue_watermark: int | None,
    on_overload,
    noun: str = "replica",
    healthy: Sequence[bool] | None = None,
) -> tuple[int, bool, bool]:
    """One routed pick plus health gating and the watermark diversion.

    The single implementation of the shard tiers' routing step
    (:class:`~repro.serve.shard.ShardedSolveService` and
    :class:`~repro.serve.procshard.ProcessShardedSolveService` both
    call it): ask ``router`` for a target; when the target is not
    healthy, steer to the shallowest healthy queue; and when the final
    target's depth has reached ``queue_watermark``, divert via
    ``on_overload`` (or ``fallback``, typically least-loaded) instead
    of piling on.  Health always wins: a diversion target — including
    one named by the ``on_overload`` hook — that is unhealthy is
    re-steered to the shallowest healthy queue.

    Parameters
    ----------
    router / fallback:
        The policy router and the diversion fallback (both sized for
        ``len(depths)`` targets).
    key:
        The request's routing key (may be ``None``).
    depths:
        Per-target depth sample the decision should see.
    queue_watermark:
        Diversion threshold; ``None`` disables diversion.
    on_overload:
        Optional hook ``(chosen, depths) -> int | None`` consulted when
        the watermark trips.
    noun:
        How targets are named in error messages (``"replica"`` for the
        thread shard, ``"worker"`` for the process shard).
    healthy:
        Optional per-target admission mask (``True`` = routable).
        ``None`` means every target is routable — the pre-resilience
        behavior, with no masking overhead.

    Returns
    -------
    (int, bool, bool)
        The final target index; whether the watermark diverted the
        request off the pick (the caller's ``rebalanced`` accounting);
        and whether health gating moved it off an unhealthy target
        (the caller's health-diversion accounting).

    Raises
    ------
    ValueError
        If the router or the hook returns an out-of-range index — a
        buggy custom policy must fail loudly, not silently wrap onto
        the last target.
    FleetUnavailable
        If ``healthy`` is all-``False``: there is no target at all.
    """
    replicas = router.replicas
    all_healthy = healthy is None or all(healthy)
    if not all_healthy and not any(healthy):
        raise FleetUnavailable(
            f"no healthy {noun} to route to (all "
            f"{len(healthy)} {noun}s are out of rotation)"
        )
    chosen = router.pick(key, depths)
    if not 0 <= chosen < replicas:
        raise ValueError(
            f"router {type(router).__name__} picked {noun} "
            f"{chosen}, expected 0..{replicas - 1}"
        )
    health_diverted = False
    if not all_healthy and not healthy[chosen]:
        chosen = _least_loaded_healthy(depths, healthy)
        health_diverted = True
    if queue_watermark is None or depths[chosen] < queue_watermark:
        return chosen, False, health_diverted
    diverted = None
    if on_overload is not None:
        diverted = on_overload(chosen, depths)
        if diverted is not None and not 0 <= diverted < replicas:
            raise ValueError(
                f"on_overload returned {noun} {diverted}, "
                f"expected 0..{replicas - 1}"
            )
        if (
            diverted is not None
            and not all_healthy
            and not healthy[diverted]
        ):
            # The hook steered onto an out-of-rotation target; health
            # wins, fall through to the masked least-loaded pick.
            diverted = None
    if diverted is None:
        if all_healthy:
            diverted = fallback.pick(key, depths)
            if not 0 <= diverted < replicas:
                raise ValueError(
                    f"fallback {type(fallback).__name__} picked {noun} "
                    f"{diverted}, expected 0..{replicas - 1}"
                )
        else:
            diverted = _least_loaded_healthy(depths, healthy)
    return diverted, diverted != chosen, health_diverted
