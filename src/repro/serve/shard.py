"""Sharded multi-replica solve serving: route requests across K services.

One :class:`~repro.serve.service.SolveService` owns one problem instance
and therefore one warm queue — its throughput ceiling is one core's.
The paper's end-state is the opposite shape: a *fleet* of accelerators
each running the SEM kernel at line rate, with the host deciding which
device every request lands on.  :class:`ShardedSolveService` is that
host-side distribution layer on the CPU substrate: it owns ``K``
replica services (each with its own problem clone, workspace pool and
dispatcher thread — see :meth:`repro.sem.poisson.PoissonProblem.clone`)
and routes every request through a pluggable policy:

``tenant``
    Consistent hash on the request's routing key
    (:class:`~repro.serve.scheduler.TenantRouter`): one tenant's
    requests always meet in the same replica's queue, so they coalesce
    into the same batches — affinity is what makes micro-batching work
    under sharding.
``least-loaded``
    Live queue depths (:class:`~repro.serve.scheduler.LeastLoadedRouter`):
    a replica stalled on a slow batch stops receiving work until it
    drains.
``round-robin``
    Even rotation (:class:`~repro.serve.scheduler.RoundRobinRouter`).

Because every replica is a bit-exact clone of the same problem (shared
immutable geometry, private workspaces), *where* a request lands never
changes *what* it returns: per-request results are bit-identical to a
sequential warm :func:`~repro.sem.cg.cg_solve` for every policy.
Routing is purely a throughput/affinity decision, exactly as batching
is inside one service.

On a single-core host the fleet cannot beat one replica (the benchmark
gate in ``benchmarks/run_baseline.py`` only requires it not to fall
behind); on a multi-core/NUMA host each replica's dispatcher and BLAS
run on their own core and throughput scales with ``K`` — the ratio is
tracked like the ``threads2`` benchmark.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np
from numpy.typing import NDArray

from dataclasses import replace

from repro.sem.cg import CGResult
from repro.serve.errors import Overloaded
from repro.serve.health import FleetHealth
from repro.serve.scheduler import (
    Router,
    attach_cost_feedback,
    pick_with_diversion,
    resolve_router,
)
from repro.serve.service import SolveService, SolveTicket
from repro.serve.stats import StatsSnapshot, merge_snapshots

#: Signature of the overload hook: ``(chosen_replica, depths) -> index
#: to divert to, or None to fall back to the least-loaded replica``.
OverloadHook = Callable[[int, tuple[int, ...]], "int | None"]

#: Sentinel for "defer to SolveService's own default", so the replica
#: services' knobs have exactly one source of defaults (the
#: :class:`~repro.serve.service.SolveService` dataclass) and the two
#: constructors can never drift apart.
_UNSET: object = object()


class ShardedSolveService:
    """Route solve requests across ``K`` replica micro-batching services.

    Parameters
    ----------
    problem:
        A :class:`~repro.sem.poisson.PoissonProblem`,
        :class:`~repro.sem.helmholtz.HelmholtzProblem` or
        :class:`~repro.sem.nekbone.NekboneCase`.  Replica 0 serves
        through it directly; replicas 1..K-1 serve through
        ``problem.clone()`` (shared immutable geometry/gather-scatter
        state, private workspaces), so the problem type must provide
        ``clone()`` when ``replicas > 1``.
    replicas:
        Number of replica services (``K >= 1``).  One per core/NUMA
        domain is the intended deployment.
    policy:
        ``"tenant"``, ``"least-loaded"``, ``"round-robin"``, ``"cost"``
        (predicted-work placement via
        :class:`~repro.serve.costmodel.CostAwareRouter`), or a
        ready :class:`~repro.serve.scheduler.Router` sized for
        ``replicas``.
    max_batch / max_wait / max_pending / tol / maxiter / precision /
    precondition:
        Forwarded to every replica :class:`~repro.serve.service.SolveService`
        (each runs with ``background=True``, i.e. its own dispatcher
        thread).  When omitted, each knob takes ``SolveService``'s own
        default — there is deliberately no second set of defaults here.
    queue_watermark:
        Optional rebalancing threshold: when routing picks a replica
        whose queue already holds this many requests, the service
        consults ``on_overload`` (or falls back to the least-loaded
        replica) instead of piling on.  ``None`` disables rebalancing —
        the router's pick is final.
    on_overload:
        Optional hook ``(chosen, depths) -> int | None`` invoked when
        the watermark trips.  Return a replica index to divert the
        request there, or ``None`` to accept the default diversion
        (least-loaded).  Runs on the submitting thread; keep it cheap.
    shed_watermark:
        Optional admission-control threshold: when *every* healthy
        replica's queue already holds this many requests, ``submit``
        raises the retryable :class:`~repro.serve.errors.Overloaded`
        instead of queueing — graceful degradation by refusing work the
        surviving capacity cannot absorb in time, rather than queueing
        into timeout storms.  ``None`` (the default) never sheds.
        Must be ``>= queue_watermark`` when both are set (diversion
        rebalances *below* the shed point, shedding is the last resort).

    The per-replica health registry is exposed as :attr:`health` —
    replicas of the thread shard cannot crash, but an operator can
    :meth:`~repro.serve.health.FleetHealth.eject` or degrade one for
    maintenance and routing steers around it (requests re-route to the
    shallowest healthy queue; all-out fleets raise
    :class:`~repro.serve.errors.FleetUnavailable`).

    Thread safety
    -------------
    :meth:`submit` and :meth:`solve_many` are safe from any number of
    client threads (routers guard their own state; each replica's queue
    is a thread-safe :class:`~repro.serve.scheduler.MicroBatcher`).
    :meth:`close` must not race with submitters that expect admission —
    late submits raise :class:`~repro.serve.errors.ServiceClosed`.

    Examples
    --------
    >>> svc = ShardedSolveService(problem, replicas=2, policy="tenant")
    >>> ticket = svc.submit(b, key="tenant-42")   # doctest: +SKIP
    >>> svc.close()
    """

    def __init__(
        self,
        problem: object,
        replicas: int = 2,
        policy: "str | Router" = "tenant",
        max_batch: "int | object" = _UNSET,
        max_wait: "float | object" = _UNSET,
        max_pending: "int | None | object" = _UNSET,
        tol: "float | object" = _UNSET,
        maxiter: "int | object" = _UNSET,
        precision: "str | object" = _UNSET,
        precondition: "bool | object" = _UNSET,
        queue_watermark: int | None = None,
        on_overload: OverloadHook | None = None,
        shed_watermark: int | None = None,
        _problems: "Sequence[object] | None" = None,
    ) -> None:
        # _problems is the from_problems() hand-off: pre-built replicas
        # bypass the clone path but share every default above, so the
        # two construction routes can never drift apart.
        if _problems is not None:
            problems = list(_problems)
            if not problems:
                raise ValueError("from_problems needs at least one problem")
        else:
            if replicas < 1:
                raise ValueError(f"replicas must be >= 1, got {replicas}")
            if replicas > 1 and not hasattr(problem, "clone"):
                raise TypeError(
                    f"problem {type(problem).__name__} lacks clone(); "
                    "sharding needs one problem replica per service "
                    "(PoissonProblem, HelmholtzProblem and NekboneCase "
                    "all provide it)"
                )
            problems = [problem] + [
                problem.clone() for _ in range(replicas - 1)
            ]
        if queue_watermark is not None and queue_watermark < 1:
            raise ValueError(
                f"queue_watermark must be >= 1, got {queue_watermark}"
            )
        if shed_watermark is not None:
            if shed_watermark < 1:
                raise ValueError(
                    f"shed_watermark must be >= 1, got {shed_watermark}"
                )
            if (
                queue_watermark is not None
                and shed_watermark < queue_watermark
            ):
                raise ValueError(
                    f"shed_watermark ({shed_watermark}) must be >= "
                    f"queue_watermark ({queue_watermark}): diversion "
                    "rebalances below the shed point"
                )
        self.replicas = len(problems)
        self.policy = policy if isinstance(policy, str) else type(policy).__name__
        self.queue_watermark = queue_watermark
        self.on_overload = on_overload
        self.shed_watermark = shed_watermark
        self.health = FleetHealth(self.replicas)
        self._router = resolve_router(policy, self.replicas)
        self._least_loaded = resolve_router("least-loaded", self.replicas)
        self._lock = threading.Lock()
        self._routed = [0] * self.replicas  # guarded-by: _lock
        self._rebalanced = 0  # guarded-by: _lock
        self._health_diverted = 0  # guarded-by: _lock
        self._shed = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        # Only explicitly-set knobs are forwarded; omitted ones fall
        # through to SolveService's dataclass defaults.
        forwarded = {
            name: value
            for name, value in (
                ("max_batch", max_batch), ("max_wait", max_wait),
                ("max_pending", max_pending), ("tol", tol),
                ("maxiter", maxiter), ("precision", precision),
                ("precondition", precondition),
            )
            if value is not _UNSET
        }
        services: list[SolveService] = []
        try:
            for prob in problems:
                services.append(SolveService(
                    prob, background=True, **forwarded,
                ))
        except BaseException:
            # A later replica failed validation: stop the dispatcher
            # threads the earlier ones already spawned, or each failed
            # construction would leak a parked thread + workspace pool
            # for the life of the process.
            for started in services:
                started.close()
            raise
        self.services: tuple[SolveService, ...] = tuple(services)

    @classmethod
    def from_problems(
        cls,
        problems: Sequence[object],
        policy: "str | Router" = "tenant",
        **service_kwargs,
    ) -> "ShardedSolveService":
        """Build a sharded service over pre-constructed problem replicas.

        The escape hatch for heterogeneous deployments (e.g. replicas
        pinned to different thread counts, or problems cloned ahead of
        time on their NUMA domains).  The caller guarantees the
        problems are solve-compatible replicas of one discretization —
        results are bit-identical across replicas only if the problems
        are.

        Parameters
        ----------
        problems:
            One solver-protocol problem per replica (``K = len(problems)``).
        policy:
            As the constructor's ``policy``.
        **service_kwargs:
            Remaining constructor keywords (``max_batch``, ``max_wait``,
            ``queue_watermark``, ...) — same single set of defaults as
            the constructor.  ``replicas`` is rejected: the count is
            ``len(problems)``, and silently ignoring a conflicting
            request would leave the caller sizing load for a fleet that
            doesn't exist.

        Returns
        -------
        ShardedSolveService

        Raises
        ------
        TypeError
            If ``replicas`` is passed (derived from ``problems`` here).
        ValueError
            If ``problems`` is empty.
        """
        if "replicas" in service_kwargs:
            raise TypeError(
                "from_problems derives the replica count from "
                "len(problems); do not pass replicas"
            )
        return cls(None, policy=policy, _problems=problems, **service_kwargs)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(
        self,
        b: NDArray[np.float64],
        tol: float | None = None,
        maxiter: int | None = None,
        key: object | None = None,
        deadline: float | None = None,
        precision: str | None = None,
    ) -> SolveTicket:
        """Route one right-hand side to a replica; returns its ticket.

        Parameters
        ----------
        b:
            Right-hand side of shape ``(n_dofs,)`` (copied at
            submission, as in :meth:`SolveService.submit`).
        tol / maxiter:
            Per-request overrides of the replica services' defaults.
        key:
            Routing key (tenant id).  The ``tenant`` policy hashes it to
            pick the replica; keyless requests fall back to round-robin.
            Other policies ignore it.
        deadline:
            Optional time budget in seconds (see
            :meth:`SolveService.submit`); a request still queued when it
            expires fails its ticket with
            :class:`~repro.serve.errors.DeadlineExceeded`.
        precision:
            Per-request solve policy override (``"fp64"`` or
            ``"mixed"``; see :meth:`SolveService.submit`).

        Returns
        -------
        ~repro.serve.service.SolveTicket
            Resolves to the request's :class:`~repro.sem.cg.CGResult` —
            bit-identical to a sequential warm solve regardless of which
            replica served it.

        Raises
        ------
        ValueError
            On a bad shape or invalid ``tol``/``maxiter``/``deadline``
            (bounced at submit so batchmates are never poisoned).
        ~repro.serve.errors.ServiceClosed
            After :meth:`close`.
        ~repro.serve.errors.Overloaded
            When ``shed_watermark`` is set and every healthy replica's
            queue is at or past it (retryable — back off and resubmit).
        ~repro.serve.errors.FleetUnavailable
            When every replica is out of rotation (degraded/ejected).

        Notes
        -----
        Thread-safe.  Blocks when the chosen replica's queue is at its
        ``max_pending`` backpressure bound (the watermark diversion
        fires *before* that point when configured, steering load away
        from deep queues instead of blocking on them).
        """
        mask = self.health.mask()
        healthy = None if all(mask) else mask
        # Sampling depths takes every replica's queue lock; skip it on
        # the hot path when neither the policy, a watermark, admission
        # control nor health steering reads it.
        if (
            self._router.uses_depths
            or self.queue_watermark is not None
            or self.shed_watermark is not None
            or healthy is not None
        ):
            depths = self.queue_depths
        else:
            depths = (0,) * self.replicas
        if self.shed_watermark is not None:
            admitting = [
                depths[i] for i in range(self.replicas)
                if healthy is None or healthy[i]
            ]
            if admitting and all(
                d >= self.shed_watermark for d in admitting
            ):
                with self._lock:
                    self._shed += 1
                raise Overloaded(
                    f"every healthy replica's queue is at the shed "
                    f"watermark ({self.shed_watermark}); retry after "
                    "backoff"
                )
        chosen, rebalanced, health_diverted = pick_with_diversion(
            self._router, self._least_loaded, key, depths,
            self.queue_watermark, self.on_overload, noun="replica",
            healthy=healthy,
        )
        if rebalanced or health_diverted:
            with self._lock:
                self._rebalanced += rebalanced
                self._health_diverted += health_diverted
        ticket = self.services[chosen].submit(
            b, tol=tol, maxiter=maxiter, deadline=deadline,
            precision=precision,
        )
        attach_cost_feedback(
            self._router, ticket, chosen, key, tol, precision,
        )
        with self._lock:
            self._routed[chosen] += 1
        return ticket

    def solve_many(
        self,
        bs,
        tol: float | None = None,
        maxiter: int | None = None,
        keys: Sequence[object] | None = None,
        deadline: float | None = None,
        precision: str | None = None,
    ) -> list[CGResult]:
        """Solve a block of right-hand sides; results in input order.

        Parameters
        ----------
        bs:
            ``(M, n)`` array or sequence of ``(n,)`` vectors.
        tol / maxiter:
            Shared per-request overrides.
        keys:
            Optional per-request routing keys (``len(keys) == M``).
        deadline:
            Shared per-request time budget in seconds.
        precision:
            Shared per-request solve policy override.

        Returns
        -------
        list of ~repro.sem.cg.CGResult
            One result per input row, in input order.
        """
        if keys is not None and len(keys) != len(bs):
            raise ValueError(
                f"keys length {len(keys)} != number of requests {len(bs)}"
            )
        tickets = [
            self.submit(
                b, tol=tol, maxiter=maxiter,
                key=None if keys is None else keys[i],
                deadline=deadline, precision=precision,
            )
            for i, b in enumerate(bs)
        ]
        return [t.result() for t in tickets]

    def flush(self) -> None:
        """Drain every replica's pending queue on the calling thread.

        Replicas run background dispatchers, so flushing is rarely
        needed — it exists for latency-sensitive callers that want
        lingering partial batches solved *now* instead of after
        ``max_wait``.  Safe to call concurrently with the dispatchers
        (client and dispatcher split each queue between them).
        """
        for svc in self.services:
            svc.flush()

    def close(self) -> None:
        """Gracefully drain and stop every replica.  Idempotent.

        Each replica's queue is closed (new submits raise
        :class:`~repro.serve.errors.ServiceClosed`), its dispatcher
        drains the pending requests and exits, and its workspace pool
        is shut down.  Every ticket submitted before ``close`` is
        resolved — drain-on-close is the serving layer's no-dropped-
        requests guarantee.
        """
        with self._lock:
            self._closed = True
        for svc in self.services:
            svc.close()

    def __enter__(self) -> "ShardedSolveService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun; late submits raise
        :class:`~repro.serve.errors.ServiceClosed`."""
        with self._lock:
            return self._closed

    @property
    def queue_depths(self) -> tuple[int, ...]:
        """Live pending-request count of every replica."""
        return tuple(svc.queue_depth for svc in self.services)

    @property
    def replica_stats(self) -> tuple[StatsSnapshot, ...]:
        """One consistent :class:`~repro.serve.stats.StatsSnapshot` per
        replica (each cut under its own stats lock)."""
        return tuple(svc.stats for svc in self.services)

    @property
    def stats(self) -> StatsSnapshot:
        """Aggregate fleet snapshot (see
        :func:`~repro.serve.stats.merge_snapshots`): counters sum,
        ``wall_seconds`` spans the earliest submission to the latest
        completion across replicas, so ``solves_per_second`` reads as
        fleet throughput.  The fleet-level ``shed`` counter (requests
        refused with :class:`~repro.serve.errors.Overloaded`) is folded
        in here — shed requests never reached a replica."""
        merged = merge_snapshots(self.replica_stats)
        with self._lock:
            shed = self._shed
        return merged if shed == 0 else replace(merged, shed=shed)

    @property
    def routed(self) -> tuple[int, ...]:
        """Requests routed to each replica (watermark diversions land on
        the replica they were diverted *to*)."""
        with self._lock:
            return tuple(self._routed)

    @property
    def rebalanced(self) -> int:
        """Requests diverted off their routed replica by the watermark."""
        with self._lock:
            return self._rebalanced

    @property
    def health_diverted(self) -> int:
        """Requests steered off an out-of-rotation replica by health
        gating (distinct from watermark :attr:`rebalanced`)."""
        with self._lock:
            return self._health_diverted

    @property
    def shed(self) -> int:
        """Requests refused at admission with
        :class:`~repro.serve.errors.Overloaded`."""
        with self._lock:
            return self._shed
