"""Exclusive leases over a problem's cache of batched solver workspaces.

A :class:`~repro.sem.workspace.SolverWorkspace` serves one (possibly
stacked) solve at a time — its buffers are reused in place, so two
concurrent solves through the same problem would corrupt each other.
:class:`WorkspacePool` wraps the problem's own
:func:`~repro.sem.workspace.cached_batch_workspace` cache (one warm
workspace per distinct batch size, sharing the problem's ``threads=``
setting) with the one thing the cache itself doesn't provide: mutual
exclusion.  The micro-batching service leases a workspace around every
stacked dispatch; scripted callers can do the same around manual
batched solves.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.sem.workspace import SolverWorkspace


class WorkspacePool:
    """Serialized access to one problem's batched-workspace cache.

    Parameters
    ----------
    problem:
        Any object with ``batch_workspace(batch) -> SolverWorkspace``
        (:class:`~repro.sem.poisson.PoissonProblem`,
        :class:`~repro.sem.helmholtz.HelmholtzProblem`, or
        :class:`~repro.sem.nekbone.NekboneCase`).

    The pool does not pre-size anything: workspaces materialize lazily
    per distinct batch size on first lease (warm thereafter), exactly as
    the problem's own cache behaves.

    Thread safety
    -------------
    Fully thread-safe: one internal lock serializes leases, so any
    number of dispatcher/client threads can contend for the problem's
    workspaces — exactly one solve runs through them at a time.  In a
    sharded deployment each replica owns its own pool over its own
    problem clone, so replicas never serialize against each other.
    """

    def __init__(self, problem) -> None:
        self._problem = problem
        self._lock = threading.Lock()
        self._leased: dict[int, SolverWorkspace] = {}

    @contextmanager
    def lease(self, batch: int) -> Iterator[SolverWorkspace]:
        """Exclusive use of the warm workspace for ``batch`` systems.

        Held for the whole stacked solve: the underlying buffers (and
        the problem's shared single-system workspace for ``batch == 1``)
        admit exactly one solve at a time.

        Parameters
        ----------
        batch:
            Number of stacked systems the leased workspace must carry.

        Yields
        ------
        ~repro.sem.workspace.SolverWorkspace
            The problem's cached workspace for ``batch``, exclusively
            held until the ``with`` block exits.  Blocks while another
            thread holds any lease from this pool.
        """
        with self._lock:
            ws = self._problem.batch_workspace(batch)
            self._leased[batch] = ws
            yield ws

    # ------------------------------------------------------------------
    @property
    def sizes(self) -> tuple[int, ...]:
        """Batch sizes this pool has leased so far (sorted)."""
        return tuple(sorted(self._leased))

    @property
    def nbytes(self) -> int:
        """Bytes held by every workspace leased through this pool."""
        return sum(ws.nbytes for ws in self._leased.values())

    def shutdown(self) -> None:
        """Shut down the worker pools of every leased workspace.

        Buffers stay valid and executors respawn lazily on next use, so
        this is safe even if the problem keeps being used afterwards.
        """
        with self._lock:
            for ws in self._leased.values():
                ws.shutdown()
