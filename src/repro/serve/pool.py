"""Exclusive leases over a problem's cache of batched solver workspaces.

A :class:`~repro.sem.workspace.SolverWorkspace` serves one (possibly
stacked) solve at a time — its buffers are reused in place, so two
concurrent solves through the same problem would corrupt each other.
:class:`WorkspacePool` wraps the problem's own
:func:`~repro.sem.workspace.cached_batch_workspace` cache (one warm
workspace per distinct batch size, sharing the problem's ``threads=``
setting) with the one thing the cache itself doesn't provide: mutual
exclusion.  The micro-batching service leases a workspace around every
stacked dispatch; scripted callers can do the same around manual
batched solves.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.analysis.runtime import race_checked
from repro.sem.workspace import SolverWorkspace


@race_checked
class WorkspacePool:
    """Serialized access to one problem's batched-workspace cache.

    Parameters
    ----------
    problem:
        Any object with ``batch_workspace(batch) -> SolverWorkspace``
        (:class:`~repro.sem.poisson.PoissonProblem`,
        :class:`~repro.sem.helmholtz.HelmholtzProblem`, or
        :class:`~repro.sem.nekbone.NekboneCase`).

    The pool does not pre-size anything: workspaces materialize lazily
    per distinct batch size on first lease (warm thereafter), exactly as
    the problem's own cache behaves.

    Thread safety
    -------------
    Fully thread-safe: one internal lock serializes leases, so any
    number of dispatcher/client threads can contend for the problem's
    workspaces — exactly one solve runs through them at a time.  In a
    sharded deployment each replica owns its own pool over its own
    problem clone, so replicas never serialize against each other.
    """

    # The invariant the PR 5 ``sizes``-vs-first-lease race taught us:
    # the lease registry is only ever touched under its own mutex.
    # Checked statically by the lock-discipline rule and dynamically
    # (REPRO_RACECHECK=1) by the guarded-attribute descriptors.
    _GUARDED_BY = {"_leased": "_registry_lock"}
    _TRACKED_LOCKS = ("_lock", "_registry_lock")

    def __init__(self, problem) -> None:
        self._problem = problem
        self._lock = threading.Lock()
        # The lease registry gets its own tiny mutex: sizes/nbytes must
        # not iterate the dict while a first-time lease inserts into it
        # (RuntimeError: dictionary changed size during iteration), but
        # they must also not serialize behind the *lease* lock — that
        # one is held for the length of an entire solve, and stats
        # introspection stalling for seconds behind a solve is its own
        # bug.
        self._registry_lock = threading.Lock()
        # Keys: plain ints for fp64 leases, (batch, "f32") for the fp32
        # twins a mixed lease adds alongside.
        self._leased: dict[object, SolverWorkspace] = {}

    @contextmanager
    def lease(self, batch: int) -> Iterator[SolverWorkspace]:
        """Exclusive use of the warm workspace for ``batch`` systems.

        Held for the whole stacked solve: the underlying buffers (and
        the problem's shared single-system workspace for ``batch == 1``)
        admit exactly one solve at a time.

        Parameters
        ----------
        batch:
            Number of stacked systems the leased workspace must carry.

        Yields
        ------
        ~repro.sem.workspace.SolverWorkspace
            The problem's cached workspace for ``batch``, exclusively
            held until the ``with`` block exits.  Blocks while another
            thread holds any lease from this pool.
        """
        with self._lock:
            ws = self._problem.batch_workspace(batch)
            with self._registry_lock:
                self._leased[batch] = ws
            yield ws

    @contextmanager
    def lease_mixed(
        self, batch: int
    ) -> Iterator[tuple[SolverWorkspace, SolverWorkspace]]:
        """Exclusive use of the fp64 + fp32 workspace pair for ``batch``.

        The mixed-precision dispatch needs both: the fp64 workspace
        carries the refinement loop's outer vectors, the fp32 twin the
        inner correction solves.  One lease (the same lock as
        :meth:`lease`) covers the pair — the fp64 buffers are shared
        with the plain path, so a mixed and an fp64 solve must still
        exclude each other.

        Yields
        ------
        (SolverWorkspace, SolverWorkspace)
            The ``(fp64, fp32)`` workspaces for ``batch``, exclusively
            held until the ``with`` block exits.
        """
        with self._lock:
            ws = self._problem.batch_workspace(batch)
            ws32 = self._problem.batch_workspace(batch, dtype=np.float32)
            with self._registry_lock:
                self._leased[batch] = ws
                self._leased[(batch, "f32")] = ws32
            yield ws, ws32

    # ------------------------------------------------------------------
    @property
    def sizes(self) -> tuple[int, ...]:
        """Batch sizes this pool has leased so far (sorted).

        Counts fp64 leases only (a mixed lease's fp32 twin rides along
        at the same batch size); see :attr:`nbytes` for the full
        footprint including the twins.  Guarded by the registry lock
        (never the lease lock), so a snapshot racing a first-time lease
        sees a consistent dict without waiting out an in-flight solve.
        """
        with self._registry_lock:
            return tuple(sorted(
                k for k in self._leased if isinstance(k, int)
            ))

    @property
    def nbytes(self) -> int:
        """Bytes held by every workspace leased through this pool.

        Locked like :attr:`sizes` (``ws.nbytes`` runs Python arithmetic
        mid-iteration, giving the GIL every chance to interleave a
        mutating lease).
        """
        with self._registry_lock:
            return sum(ws.nbytes for ws in self._leased.values())

    def shutdown(self) -> None:
        """Shut down the worker pools of every leased workspace.

        Buffers stay valid and executors respawn lazily on next use, so
        this is safe even if the problem keeps being used afterwards.
        Takes the lease lock, so it waits out an in-flight solve rather
        than stopping its executor mid-flight.
        """
        with self._lock:
            with self._registry_lock:
                workspaces = list(self._leased.values())
            for ws in workspaces:
                ws.shutdown()
