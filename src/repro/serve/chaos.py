"""Deterministic fault injection for the process-sharded serving fleet.

Resilience code that is only exercised by real crashes is resilience
code that is never exercised.  This module makes every failure mode of
:class:`~repro.serve.procshard.ProcessShardedSolveService` a scheduled,
seeded, replayable event:

* **kill worker K after M dispatches** — the parent terminates the
  worker process immediately after sending it its M-th request, which
  exercises the reader-thread crash detection, the retry path for the
  lost in-flight requests, and the supervisor's respawn.
* **delay / drop pipe messages** — the parent sleeps before (or skips
  entirely) sending a specific ``solve_block`` message, which exercises
  deadline expiry and the parent-side watchdog that recovers requests
  lost without a crash.  On the ring transport the ``solve_block``
  message is the *doorbell* (the payload is already staged in the
  worker's slot ring), so the same faults exercise the ring hand-off:
  a dropped doorbell leaves a staged slot that the watchdog must
  reclaim.
* **slow solves** — a worker sleeps a scheduled amount before solving a
  specific request ordinal, which exercises queue-depth divergence,
  watermark diversion, and deadline expiry under load.

A :class:`FaultPlan` is a frozen *description* of the faults (what, to
which worker slot, on which 1-based dispatch ordinal).  It is pure data:
hashable, printable, and buildable from a seed so CI can replay the
exact same chaos forever.  A :class:`FaultInjector` is the *live
counter state* for one service run — it watches dispatches and answers
"does a fault fire now?".  Plans are reusable; injectors are not (their
counters advance), so pass a plan to the service and let it build the
injector, or build one injector per run.

Ordinals count **dispatches to a slot across its whole lifetime**,
including retries and dispatches to a respawned worker in the same
slot — so "kill slot 0 after 2" fires once on slot 0's second dispatch
ever, and the respawned worker in slot 0 is not re-killed.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.runtime import race_checked


def _freeze_ordinal_map(raw: Mapping[int, int], noun: str) -> dict[int, int]:
    out = {}
    for slot, ordinal in raw.items():
        if int(ordinal) < 1:
            raise ValueError(
                f"{noun} ordinals are 1-based, got {ordinal} for slot {slot}"
            )
        out[int(slot)] = int(ordinal)
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded schedule of faults for one fleet.

    All ordinals are 1-based dispatch counts per worker *slot* (counted
    across respawns, so a fault fires at most once per slot).

    Parameters
    ----------
    kill_after:
        ``{slot: M}`` — terminate the worker in ``slot`` right after
        the parent dispatches its M-th ``solve_block`` message.
    delay_send:
        ``{(slot, M): seconds}`` — the parent sleeps that long before
        sending the slot's M-th ``solve_block`` message (exercises
        deadline expiry while "on the wire").
    drop_send:
        ``{(slot, M), ...}`` — the parent silently skips sending the
        slot's M-th ``solve_block`` message.  The worker never sees the
        requests; only the deadline watchdog can recover them, so every
        request that can be dropped must carry a deadline.
    slow_solves:
        ``{slot: {M: seconds}}`` — the worker in ``slot`` sleeps before
        enqueueing the requests of its M-th received block.  This part
        of the plan is shipped to the worker process at spawn (it is
        plain picklable data).
    """

    kill_after: Mapping[int, int] = field(default_factory=dict)
    delay_send: Mapping[tuple[int, int], float] = field(default_factory=dict)
    drop_send: frozenset[tuple[int, int]] = field(default_factory=frozenset)
    slow_solves: Mapping[int, Mapping[int, float]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "kill_after", _freeze_ordinal_map(self.kill_after, "kill_after")
        )
        delays = {}
        for (slot, ordinal), seconds in dict(self.delay_send).items():
            if ordinal < 1:
                raise ValueError(
                    f"delay_send ordinals are 1-based, got {ordinal}"
                )
            if seconds < 0:
                raise ValueError(f"delay_send seconds must be >= 0, got {seconds}")
            delays[(int(slot), int(ordinal))] = float(seconds)
        object.__setattr__(self, "delay_send", delays)
        drops = frozenset((int(s), int(o)) for s, o in self.drop_send)
        if any(o < 1 for _, o in drops):
            raise ValueError("drop_send ordinals are 1-based")
        object.__setattr__(self, "drop_send", drops)
        slows = {}
        for slot, per_block in dict(self.slow_solves).items():
            inner = {}
            for ordinal, seconds in dict(per_block).items():
                if ordinal < 1:
                    raise ValueError(
                        f"slow_solves ordinals are 1-based, got {ordinal}"
                    )
                if seconds < 0:
                    raise ValueError(
                        f"slow_solves seconds must be >= 0, got {seconds}"
                    )
                inner[int(ordinal)] = float(seconds)
            slows[int(slot)] = inner
        object.__setattr__(self, "slow_solves", slows)

    @classmethod
    def kill_each_worker_once(
        cls, workers: int, *, first_kill_after: int = 2, stagger: int = 3
    ) -> "FaultPlan":
        """The acceptance-criterion plan: every slot dies exactly once,
        at staggered dispatch ordinals (slot ``k`` after
        ``first_kill_after + k * stagger`` dispatches) so the fleet is
        never killed all at once and each respawn is observable."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if first_kill_after < 1 or stagger < 0:
            raise ValueError("first_kill_after >= 1 and stagger >= 0 required")
        return cls(
            kill_after={
                k: first_kill_after + k * stagger for k in range(workers)
            }
        )

    @classmethod
    def from_seed(
        cls,
        seed: int,
        workers: int,
        *,
        kills: int = 1,
        max_ordinal: int = 8,
        slow_every: int | None = None,
        slow_seconds: float = 0.01,
    ) -> "FaultPlan":
        """Build a reproducible random plan from a seed.

        ``kills`` distinct slots get a kill at a random ordinal in
        ``[1, max_ordinal]``; optionally every ``slow_every``-th block
        ordinal (up to ``max_ordinal``) of every slot sleeps
        ``slow_seconds``.  Same seed → same plan, forever.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not 0 <= kills <= workers:
            raise ValueError(
                f"kills must be in [0, {workers}], got {kills}"
            )
        rng = random.Random(seed)
        victims = rng.sample(range(workers), kills)
        kill_after = {
            slot: rng.randint(1, max_ordinal) for slot in sorted(victims)
        }
        slow: dict[int, dict[int, float]] = {}
        if slow_every is not None and slow_every >= 1:
            for slot in range(workers):
                slow[slot] = {
                    o: slow_seconds
                    for o in range(slow_every, max_ordinal + 1, slow_every)
                }
        return cls(kill_after=kill_after, slow_solves=slow)


@race_checked
class FaultInjector:
    """Live per-run counter state over a :class:`FaultPlan`.

    The parent consults it at dispatch time; counters advance under an
    internal lock so concurrent submitters see a consistent ordinal
    sequence per slot.  Each fault fires at most once.
    """

    _GUARDED_BY = {"_dispatched": "_lock", "_killed": "_lock"}

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._dispatched: dict[int, int] = {}
        self._killed: set[int] = set()

    def next_ordinal(self, slot: int) -> int:
        """Advance and return the slot's 1-based dispatch ordinal."""
        with self._lock:
            n = self._dispatched.get(slot, 0) + 1
            self._dispatched[slot] = n
            return n

    def send_action(self, slot: int, ordinal: int) -> tuple[float, bool]:
        """``(delay_seconds, drop)`` for this slot's ``ordinal``-th
        ``solve_block`` send."""
        delay = self.plan.delay_send.get((slot, ordinal), 0.0)
        drop = (slot, ordinal) in self.plan.drop_send
        return delay, drop

    def should_kill(self, slot: int, ordinal: int) -> bool:
        """True exactly once: when the slot reaches its planned kill
        ordinal (and has not been killed by the plan before)."""
        target = self.plan.kill_after.get(slot)
        if target is None or ordinal < target:
            return False
        with self._lock:
            if slot in self._killed:
                return False
            self._killed.add(slot)
            return True

    def worker_slow_schedule(self, slot: int) -> dict[int, float]:
        """The picklable slow-solve schedule shipped to the worker in
        this slot (``{block_ordinal: seconds}``)."""
        return dict(self.plan.slow_solves.get(slot, {}))

    @property
    def kills_fired(self) -> int:
        with self._lock:
            return len(self._killed)

    def dispatched(self, slot: int) -> int:
        """How many blocks the parent has dispatched to this slot."""
        with self._lock:
            return self._dispatched.get(slot, 0)
