"""The serving stack's failure vocabulary — one taxonomy, four fronts.

Every serving tier (:class:`~repro.serve.service.SolveService`, the
thread shard, the process shard, and the asyncio facade) surfaces the
same small set of errors, so a client written against one front handles
failures from all of them:

=====================  ==========  =========================================
error                  retryable?  meaning
=====================  ==========  =========================================
:class:`ServiceClosed` no          submit after :meth:`close` — the service
                                   is gone, not busy.
:class:`Overloaded`    yes         admission control shed the request:
                                   surviving capacity cannot absorb it right
                                   now.  Back off and resubmit.
:class:`DeadlineExceeded` no       the request's own deadline expired before
                                   it could be solved (queued too long, or
                                   lost to a crash with no time to retry).
:class:`FleetUnavailable` yes      no healthy worker could take the request
                                   and the retry policy is exhausted (or
                                   every worker is ejected).
:class:`WorkerCrashed` --          a worker process died.  With a retry
                                   policy (the default) this never escapes
                                   to callers — requests are transparently
                                   resubmitted; it surfaces only when
                                   retry is explicitly disabled.
=====================  ==========  =========================================

"Retryable" means the condition is expected to clear (capacity returns,
a worker respawns); the terminal errors mean the request's own budget —
its deadline or the retry policy — ran out.

:class:`QueueClosed` predates this module and remains the base class of
:class:`ServiceClosed` so existing ``except QueueClosed`` handlers keep
working; new code should catch :class:`ServiceClosed`.
"""

from __future__ import annotations


class QueueClosed(RuntimeError):
    """Historical base of :class:`ServiceClosed` (kept so existing
    ``except QueueClosed`` handlers continue to match).  The serving
    fronts raise :class:`ServiceClosed`, never this base directly."""


class ServiceClosed(QueueClosed):
    """Submit on a closed service — raised uniformly by all four
    serving fronts (:class:`~repro.serve.service.SolveService`,
    :class:`~repro.serve.shard.ShardedSolveService`,
    :class:`~repro.serve.procshard.ProcessShardedSolveService`,
    :class:`~repro.serve.asyncio_front.AsyncSolveService`) once
    ``close()`` has begun.  Not retryable: the service is gone."""


class WorkerCrashed(RuntimeError):
    """A worker process died with requests in flight (or was targeted
    by a submit after dying).  With a retry policy configured (the
    process shard's default) this is an *internal* signal — lost
    requests are transparently resubmitted to healthy workers and the
    caller sees a result or a terminal error; it escapes to callers
    only when retry is explicitly disabled (``retry=None``)."""


class DeadlineExceeded(TimeoutError):
    """A request's deadline expired before it could be solved.

    Raised from the request's own ticket (never from ``submit``):
    the deadline may trip while the request is queued, when a crash
    retry would land past it, or — enforced by the parent-side
    watchdog — when the request was lost entirely (e.g. a dropped
    pipe message).  Subclasses :class:`TimeoutError` so generic
    timeout handling catches it.  A request already mid-solve is not
    interrupted; the deadline gates *starting* work, not finishing it.
    """


class FleetUnavailable(RuntimeError):
    """No healthy worker could take the request.

    Raised at submit when every worker is dead or ejected, or from a
    ticket when crash retries exhausted the
    :class:`~repro.serve.health.RetryPolicy` without finding a healthy
    worker.  Retryable: workers may respawn (unless the fleet's
    circuit breaker has ejected them all)."""


class Overloaded(RuntimeError):
    """Admission control shed the request: every healthy replica's
    queue is at or past the ``shed_watermark``, so surviving capacity
    cannot absorb the load the watermark diversion would move.
    Retryable by design — back off and resubmit; shedding exists so an
    overloaded fleet degrades by refusing work it cannot do in time,
    instead of queueing itself into timeout storms."""
