"""The serving stack's failure vocabulary — one taxonomy, four fronts.

Every serving tier (:class:`~repro.serve.service.SolveService`, the
thread shard, the process shard, and the asyncio facade) surfaces the
same small set of errors, so a client written against one front handles
failures from all of them:

=====================  ==========  =========================================
error                  retryable?  meaning
=====================  ==========  =========================================
:class:`ServiceClosed` no          submit after :meth:`close` — the service
                                   is gone, not busy.
:class:`Overloaded`    yes         admission control shed the request:
                                   surviving capacity cannot absorb it right
                                   now.  Back off and resubmit.
:class:`DeadlineExceeded` no       the request's own deadline expired before
                                   it could be solved (queued too long, or
                                   lost to a crash with no time to retry).
:class:`FleetUnavailable` yes      no healthy worker could take the request
                                   and the retry policy is exhausted (or
                                   every worker is ejected).
:class:`WorkerCrashed` --          a worker process died.  With a retry
                                   policy (the default) this never escapes
                                   to callers — requests are transparently
                                   resubmitted; it surfaces only when
                                   retry is explicitly disabled.
=====================  ==========  =========================================

"Retryable" means the condition is expected to clear (capacity returns,
a worker respawns); the terminal errors mean the request's own budget —
its deadline or the retry policy — ran out.

The multi-tenant gateway (:mod:`repro.serve.gateway`) adds three
tenancy errors on top: :class:`AuthError` (bad/missing token — HTTP
401), :class:`RateLimited` (token bucket empty — a retryable
:class:`Overloaded` subclass carrying a deterministic ``retry_after``
hint, HTTP 429), and :class:`QuotaExceeded` (admitted-work quota
exhausted — terminal until re-provisioned, HTTP 429 without a
``Retry-After``).

:class:`QueueClosed` predates this module and remains the base class of
:class:`ServiceClosed` so existing ``except QueueClosed`` handlers keep
working; new code should catch :class:`ServiceClosed`.
"""

from __future__ import annotations


class QueueClosed(RuntimeError):
    """Historical base of :class:`ServiceClosed` (kept so existing
    ``except QueueClosed`` handlers continue to match).  The serving
    fronts raise :class:`ServiceClosed`, never this base directly."""


class ServiceClosed(QueueClosed):
    """Submit on a closed service — raised uniformly by all four
    serving fronts (:class:`~repro.serve.service.SolveService`,
    :class:`~repro.serve.shard.ShardedSolveService`,
    :class:`~repro.serve.procshard.ProcessShardedSolveService`,
    :class:`~repro.serve.asyncio_front.AsyncSolveService`) once
    ``close()`` has begun.  Not retryable: the service is gone."""


class WorkerCrashed(RuntimeError):
    """A worker process died with requests in flight (or was targeted
    by a submit after dying).  With a retry policy configured (the
    process shard's default) this is an *internal* signal — lost
    requests are transparently resubmitted to healthy workers and the
    caller sees a result or a terminal error; it escapes to callers
    only when retry is explicitly disabled (``retry=None``)."""


class DeadlineExceeded(TimeoutError):
    """A request's deadline expired before it could be solved.

    Raised from the request's own ticket (never from ``submit``):
    the deadline may trip while the request is queued, when a crash
    retry would land past it, or — enforced by the parent-side
    watchdog — when the request was lost entirely (e.g. a dropped
    pipe message).  Subclasses :class:`TimeoutError` so generic
    timeout handling catches it.  A request already mid-solve is not
    interrupted; the deadline gates *starting* work, not finishing it.
    """


class FleetUnavailable(RuntimeError):
    """No healthy worker could take the request.

    Raised at submit when every worker is dead or ejected, or from a
    ticket when crash retries exhausted the
    :class:`~repro.serve.health.RetryPolicy` without finding a healthy
    worker.  Retryable: workers may respawn (unless the fleet's
    circuit breaker has ejected them all)."""


class Overloaded(RuntimeError):
    """Admission control shed the request: every healthy replica's
    queue is at or past the ``shed_watermark``, so surviving capacity
    cannot absorb the load the watermark diversion would move.
    Retryable by design — back off and resubmit; shedding exists so an
    overloaded fleet degrades by refusing work it cannot do in time,
    instead of queueing itself into timeout storms.

    The gateway tier raises it too — for loads shed *before* the fleet
    watermark — and attaches a deterministic backoff hint as a
    ``retry_after`` attribute (seconds; surfaced as HTTP 429 +
    ``Retry-After``).  The attribute is optional: fleet-level sheds
    carry none and clients fall back to their own backoff."""

    retry_after: "float | None" = None


class RateLimited(Overloaded):
    """The tenant's token bucket is empty: the request exceeded the
    tenant's provisioned request rate, not the fleet's capacity.
    Subclasses :class:`Overloaded` (same client remedy: back off and
    resubmit — generic overload handlers keep working) and always
    carries a ``retry_after`` hint, the deterministic seconds until the
    bucket refills one token."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QuotaExceeded(RuntimeError):
    """The tenant's admitted-work quota is exhausted.  *Not* retryable
    on its own: unlike rate limits (which refill) and overloads (which
    drain), a quota resets only by out-of-band provisioning — clients
    should stop submitting, not back off and hammer."""


class AuthError(PermissionError):
    """The request's bearer token is missing, unknown, or revoked.
    Subclasses :class:`PermissionError`; surfaced by the HTTP gateway
    as 401."""
