"""Micro-batched solve serving on top of the batched CG primitive.

The serving layer the ROADMAP's "heavy traffic" north star calls for:
:class:`SolveService` accepts independent single-RHS solve requests
(from scripts via :meth:`SolveService.solve_many`, or from concurrent
client threads via :meth:`SolveService.submit` with a background
dispatcher) and dynamically coalesces them — up to ``max_batch``
requests, waiting at most ``max_wait`` — into warm
:func:`~repro.sem.cg.cg_solve_batched` dispatches through a pooled
cache of batched workspaces.  Per-request results are bit-identical to
sequential warm :func:`~repro.sem.cg.cg_solve` calls; batching is
purely a throughput decision.

Quick taste::

    from repro.sem import BoxMesh, PoissonProblem, ReferenceElement
    from repro.serve import SolveService

    problem = PoissonProblem(mesh, ax_backend="matmul")
    with SolveService(problem, max_batch=8, background=True) as svc:
        tickets = [svc.submit(b, tol=1e-10) for b in request_stream]
        results = [t.result() for t in tickets]
        print(svc.stats.solves_per_second, svc.stats.batch_histogram)
"""

from repro.serve.pool import WorkspacePool
from repro.serve.scheduler import MicroBatcher, QueueClosed
from repro.serve.service import SolveService, SolveTicket
from repro.serve.stats import ServiceStats, StatsSnapshot

__all__ = [
    "SolveService",
    "SolveTicket",
    "WorkspacePool",
    "MicroBatcher",
    "QueueClosed",
    "ServiceStats",
    "StatsSnapshot",
]
