"""Micro-batched solve serving on top of the batched CG primitive.

The serving layer the ROADMAP's "heavy traffic" north star calls for,
in three tiers:

* :class:`SolveService` — one warm queue: accepts independent
  single-RHS solve requests (from scripts via
  :meth:`SolveService.solve_many`, or from concurrent client threads
  via :meth:`SolveService.submit` with a background dispatcher) and
  dynamically coalesces them — up to ``max_batch`` requests, waiting at
  most ``max_wait`` — into warm
  :func:`~repro.sem.cg.cg_solve_batched` dispatches through a pooled
  cache of batched workspaces.
* :class:`ShardedSolveService` — K replica services (one problem clone,
  workspace pool and dispatcher thread each) behind a pluggable router:
  ``tenant`` (consistent hashing — a tenant's requests batch together),
  ``least-loaded`` or ``round-robin``, with watermark rebalancing and
  aggregate fleet stats.
* :class:`ProcessShardedSolveService` — the same routing surface over K
  worker *processes*, each rebuilding the problem from a picklable spec
  with the big immutable arrays attached zero-copy from shared memory
  (one physical copy of the geometry across the fleet); lifts the
  pure-Python dispatch ceiling the thread-shard hits on many-core
  hosts.
* :class:`AsyncSolveService` — an asyncio facade over either: ``await
  svc.solve(b)`` suspends the coroutine until the dispatcher resolves
  the ticket (``loop.call_soon_threadsafe``, no busy-waiting).

Per-request results are bit-identical to sequential warm
:func:`~repro.sem.cg.cg_solve` calls at every tier; batching, sharding
and async delivery are purely throughput decisions.

The process tier is **self-healing**: a supervisor respawns crashed
workers under a :class:`RestartPolicy` (exponential backoff + a
``max_restarts`` circuit breaker), crash-orphaned requests are
transparently retried on healthy workers under a :class:`RetryPolicy`
(solves are pure, so retries are bit-identical), routing is gated on a
:class:`FleetHealth` registry, and requests may carry ``deadline``
budgets.  Failures surface through one error taxonomy
(:mod:`repro.serve.errors`): :class:`ServiceClosed`,
:class:`WorkerCrashed`, :class:`DeadlineExceeded`,
:class:`FleetUnavailable`, and retryable :class:`Overloaded`.
Deterministic fault injection for tests and drills lives in
:mod:`repro.serve.chaos` (:class:`FaultPlan` / :class:`FaultInjector`).

On top of the fleet sits the **multi-tenant gateway**
(:mod:`repro.serve.gateway`): :class:`Gateway` is the
protocol-independent admission core — bearer-token auth
(:class:`TenantRegistry`), per-tenant :class:`TokenBucket` rate limits,
priority-aware early shedding (:class:`AdmissionPolicy`), exact
:class:`QuotaLedger` accounting, gateway-side deadline enforcement, and
a :class:`CostModel` that learns expected iterations per ``(tenant,
tol, precision)`` from completed solves; share that model with a
:class:`CostAwareRouter` (``policy="cost"``) and the fleet routes by
*predicted work* instead of queue depth.  :class:`GatewayServer` puts a
dependency-free HTTP/1.1 + WebSocket wire protocol in front of it.

Quick taste::

    from repro.sem import BoxMesh, PoissonProblem, ReferenceElement
    from repro.serve import ShardedSolveService

    problem = PoissonProblem(mesh, ax_backend="matmul")
    with ShardedSolveService(problem, replicas=2, policy="tenant") as svc:
        tickets = [svc.submit(b, key=tenant) for tenant, b in stream]
        results = [t.result() for t in tickets]
        print(svc.stats.solves_per_second, svc.queue_depths)

See ``docs/serving.md`` for the full tour (single solve -> warm
workspace -> batched -> service -> sharded/async).
"""

from repro.serve.asyncio_front import AsyncSolveService
from repro.serve.auth import (
    QuotaLedger,
    Tenant,
    TenantRegistry,
    TokenBucket,
)
from repro.serve.chaos import FaultInjector, FaultPlan
from repro.serve.costmodel import CostAwareRouter, CostModel
from repro.serve.errors import (
    AuthError,
    DeadlineExceeded,
    FleetUnavailable,
    Overloaded,
    QuotaExceeded,
    RateLimited,
    ServiceClosed,
    WorkerCrashed,
)
from repro.serve.gateway import Gateway, GatewayServer
from repro.serve.health import (
    AdmissionPolicy,
    FleetHealth,
    HealthState,
    RestartPolicy,
    RetryPolicy,
)
from repro.serve.pool import WorkspacePool
from repro.serve.procshard import ProcessShardedSolveService
from repro.serve.scheduler import (
    LeastLoadedRouter,
    MicroBatcher,
    QueueClosed,
    RoundRobinRouter,
    Router,
    TenantRouter,
    attach_cost_feedback,
    resolve_router,
)
from repro.serve.service import SolveService, SolveTicket
from repro.serve.shard import ShardedSolveService
from repro.serve.stats import (
    ServiceStats,
    StatsSnapshot,
    merge_snapshots,
    perf_epoch_offset,
)

__all__ = [
    "SolveService",
    "ShardedSolveService",
    "ProcessShardedSolveService",
    "AsyncSolveService",
    "SolveTicket",
    "WorkspacePool",
    "MicroBatcher",
    # Error taxonomy (repro.serve.errors)
    "ServiceClosed",
    "QueueClosed",
    "WorkerCrashed",
    "DeadlineExceeded",
    "FleetUnavailable",
    "Overloaded",
    "RateLimited",
    "QuotaExceeded",
    "AuthError",
    # Resilience (repro.serve.health / repro.serve.chaos)
    "FleetHealth",
    "HealthState",
    "RetryPolicy",
    "RestartPolicy",
    "AdmissionPolicy",
    "FaultPlan",
    "FaultInjector",
    # Gateway tier (repro.serve.gateway / auth / costmodel)
    "Gateway",
    "GatewayServer",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "QuotaLedger",
    "CostModel",
    "CostAwareRouter",
    "Router",
    "TenantRouter",
    "LeastLoadedRouter",
    "RoundRobinRouter",
    "resolve_router",
    "attach_cost_feedback",
    "ServiceStats",
    "StatsSnapshot",
    "merge_snapshots",
    "perf_epoch_offset",
]
