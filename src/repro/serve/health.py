"""Per-replica health states and the resilience policies that act on them.

The self-healing fleet (:class:`~repro.serve.procshard.ProcessShardedSolveService`)
needs three small, separable pieces:

* :class:`FleetHealth` — a thread-safe registry of per-slot states that
  the routing step consults on every submit.  A slot is ``HEALTHY``
  (admitting requests), ``DEGRADED`` (temporarily out — its worker died
  and a respawn is pending or in flight), or ``EJECTED`` (permanently
  out — the restart circuit breaker tripped).
* :class:`RetryPolicy` — how requests lost to a crash are resubmitted:
  bounded attempts with exponential backoff.  Solves are pure (same
  rhs, same bits, any worker), which is what makes transparent
  resubmission sound.
* :class:`RestartPolicy` — how dead workers are respawned: exponential
  backoff between restarts, with a max-restarts circuit breaker so a
  worker that dies on arrival (bad host state, poisoned core) cannot
  restart-storm the fleet forever.

Both policies are deliberately **jitter-free**: backoff here is
deterministic so the chaos harness (:mod:`repro.serve.chaos`) reproduces
every supervision decision bit-for-bit in CI.  A deployment that needs
decorrelated restarts across many hosts can subclass and override
:meth:`RetryPolicy.backoff` / :meth:`RestartPolicy.backoff`.

The thread shard (:class:`~repro.serve.shard.ShardedSolveService`) uses
:class:`FleetHealth` too — its replicas cannot crash, but operators can
:meth:`~FleetHealth.eject` one for maintenance and routing will steer
around it.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass


class HealthState(enum.Enum):
    """Routing-visible health of one replica/worker slot."""

    #: Admitting requests.
    HEALTHY = "healthy"
    #: Temporarily out of rotation (crashed; respawn pending/in flight).
    DEGRADED = "degraded"
    #: Permanently out (circuit breaker tripped, or operator decision).
    EJECTED = "ejected"


@dataclass(frozen=True)
class RetryPolicy:
    """Resubmission policy for requests lost to a worker crash.

    Parameters
    ----------
    max_attempts:
        Total dispatch attempts per request (the initial submit counts
        as the first).  When a crash consumes the last attempt the
        ticket fails with
        :class:`~repro.serve.errors.FleetUnavailable`.
    backoff_base / backoff_factor / backoff_max:
        The delay before retry ``k`` (1-based) is
        ``min(backoff_max, backoff_base * backoff_factor**(k-1))``
        seconds.  Deterministic — no jitter — so fault-injection runs
        reproduce exactly.
    """

    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_max: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base/backoff_max must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


@dataclass(frozen=True)
class RestartPolicy:
    """Respawn policy for dead worker slots.

    Parameters
    ----------
    max_restarts:
        Circuit breaker: after this many restarts of one slot, the slot
        is :attr:`~HealthState.EJECTED` instead of respawned — a worker
        that keeps dying is a fault to surface, not to hide behind an
        infinite restart storm.
    backoff_base / backoff_factor / backoff_max:
        Delay before restart ``k`` of a slot (1-based):
        ``min(backoff_max, backoff_base * backoff_factor**(k-1))``
        seconds.  Deterministic (no jitter) for reproducible chaos runs.
    """

    max_restarts: int = 5
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_restarts < 1:
            raise ValueError(
                f"max_restarts must be >= 1, got {self.max_restarts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base/backoff_max must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, restart: int) -> float:
        """Seconds to wait before restart number ``restart`` (1-based)."""
        if restart < 1:
            raise ValueError(f"restart must be >= 1, got {restart}")
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (restart - 1),
        )


class FleetHealth:
    """Thread-safe per-slot health registry the routing step consults.

    Parameters
    ----------
    slots:
        Number of replica/worker slots (fixed for the fleet's life —
        respawn refills a slot, it never grows the fleet).

    Thread safety
    -------------
    Every method takes one internal lock; :meth:`mask` and
    :attr:`states` are point-in-time samples (routing must tolerate a
    mask a few microseconds stale, exactly as it tolerates stale queue
    depths).
    """

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self._lock = threading.Lock()
        self._states = [HealthState.HEALTHY] * slots
        self._restart_attempts = [0] * slots

    def __len__(self) -> int:
        return len(self._states)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def states(self) -> tuple[HealthState, ...]:
        """The current state of every slot."""
        with self._lock:
            return tuple(self._states)

    def state(self, slot: int) -> HealthState:
        """The current state of one slot."""
        with self._lock:
            return self._states[slot]

    def mask(self) -> tuple[bool, ...]:
        """``True`` per slot that is admitting requests (HEALTHY)."""
        with self._lock:
            return tuple(s is HealthState.HEALTHY for s in self._states)

    @property
    def healthy_count(self) -> int:
        """Number of slots currently admitting requests."""
        with self._lock:
            return sum(
                s is HealthState.HEALTHY for s in self._states
            )

    def any_recoverable(self) -> bool:
        """True when at least one slot is DEGRADED — capacity that a
        pending respawn will bring back (EJECTED slots never return)."""
        with self._lock:
            return any(s is HealthState.DEGRADED for s in self._states)

    def restart_attempts(self, slot: int) -> int:
        """Restarts attempted for this slot so far (circuit-breaker
        progress)."""
        with self._lock:
            return self._restart_attempts[slot]

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def mark_healthy(self, slot: int) -> None:
        """Slot is admitting requests again (fresh or respawned worker).

        An EJECTED slot stays ejected — the circuit breaker is a
        one-way door; build a new fleet to recover it.
        """
        with self._lock:
            if self._states[slot] is not HealthState.EJECTED:
                self._states[slot] = HealthState.HEALTHY

    def mark_degraded(self, slot: int) -> None:
        """Slot is temporarily out of rotation (worker died; respawn
        pending).  EJECTED slots stay ejected."""
        with self._lock:
            if self._states[slot] is not HealthState.EJECTED:
                self._states[slot] = HealthState.DEGRADED

    def eject(self, slot: int) -> None:
        """Permanently remove a slot from rotation (circuit breaker, or
        an operator draining a replica for maintenance)."""
        with self._lock:
            self._states[slot] = HealthState.EJECTED

    def record_restart_attempt(self, slot: int) -> int:
        """Count one restart attempt for a slot; returns the new total
        (the supervisor compares it against
        :attr:`RestartPolicy.max_restarts`)."""
        with self._lock:
            self._restart_attempts[slot] += 1
            return self._restart_attempts[slot]
