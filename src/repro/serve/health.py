"""Per-replica health states and the resilience policies that act on them.

The self-healing fleet (:class:`~repro.serve.procshard.ProcessShardedSolveService`)
needs three small, separable pieces:

* :class:`FleetHealth` — a thread-safe registry of per-slot states that
  the routing step consults on every submit.  A slot is ``HEALTHY``
  (admitting requests), ``DEGRADED`` (temporarily out — its worker died
  and a respawn is pending or in flight), or ``EJECTED`` (permanently
  out — the restart circuit breaker tripped).
* :class:`RetryPolicy` — how requests lost to a crash are resubmitted:
  bounded attempts with exponential backoff.  Solves are pure (same
  rhs, same bits, any worker), which is what makes transparent
  resubmission sound.
* :class:`RestartPolicy` — how dead workers are respawned: exponential
  backoff between restarts, with a max-restarts circuit breaker so a
  worker that dies on arrival (bad host state, poisoned core) cannot
  restart-storm the fleet forever.

Both policies are deliberately **jitter-free**: backoff here is
deterministic so the chaos harness (:mod:`repro.serve.chaos`) reproduces
every supervision decision bit-for-bit in CI.  A deployment that needs
decorrelated restarts across many hosts can subclass and override
:meth:`RetryPolicy.backoff` / :meth:`RestartPolicy.backoff`.

The thread shard (:class:`~repro.serve.shard.ShardedSolveService`) uses
:class:`FleetHealth` too — its replicas cannot crash, but operators can
:meth:`~FleetHealth.eject` one for maintenance and routing will steer
around it.

:class:`AdmissionPolicy` is the gateway-side extension of the same
idea: the fleet's ``shed_watermark`` is its last line of defence, but a
front door that *knows* the fleet's health and queue depths can shed
earlier and smarter — priority-aware soft limits below the hard
watermark, with deterministic ``retry_after`` backoff hints instead of
bare refusals.  It is pure policy arithmetic (no locks, no clocks), so
the gateway's admission decisions are exactly reproducible in tests.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass

from repro.analysis.runtime import race_checked


class HealthState(enum.Enum):
    """Routing-visible health of one replica/worker slot."""

    #: Admitting requests.
    HEALTHY = "healthy"
    #: Temporarily out of rotation (crashed; respawn pending/in flight).
    DEGRADED = "degraded"
    #: Permanently out (circuit breaker tripped, or operator decision).
    EJECTED = "ejected"


@dataclass(frozen=True)
class RetryPolicy:
    """Resubmission policy for requests lost to a worker crash.

    Parameters
    ----------
    max_attempts:
        Total dispatch attempts per request (the initial submit counts
        as the first).  When a crash consumes the last attempt the
        ticket fails with
        :class:`~repro.serve.errors.FleetUnavailable`.
    backoff_base / backoff_factor / backoff_max:
        The delay before retry ``k`` (1-based) is
        ``min(backoff_max, backoff_base * backoff_factor**(k-1))``
        seconds.  Deterministic — no jitter — so fault-injection runs
        reproduce exactly.
    """

    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_max: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base/backoff_max must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


@dataclass(frozen=True)
class RestartPolicy:
    """Respawn policy for dead worker slots.

    Parameters
    ----------
    max_restarts:
        Circuit breaker: after this many restarts of one slot, the slot
        is :attr:`~HealthState.EJECTED` instead of respawned — a worker
        that keeps dying is a fault to surface, not to hide behind an
        infinite restart storm.
    backoff_base / backoff_factor / backoff_max:
        Delay before restart ``k`` of a slot (1-based):
        ``min(backoff_max, backoff_base * backoff_factor**(k-1))``
        seconds.  Deterministic (no jitter) for reproducible chaos runs.
    """

    max_restarts: int = 5
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_restarts < 1:
            raise ValueError(
                f"max_restarts must be >= 1, got {self.max_restarts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base/backoff_max must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, restart: int) -> float:
        """Seconds to wait before restart number ``restart`` (1-based)."""
        if restart < 1:
            raise ValueError(f"restart must be >= 1, got {restart}")
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (restart - 1),
        )


@dataclass(frozen=True)
class AdmissionPolicy:
    """Priority-aware load shedding *before* the fleet watermark.

    The fleet's ``shed_watermark`` refuses work only once every healthy
    queue is already saturated; by then latency SLOs are gone.  A
    gateway applies this policy at its own front door instead: shed
    when the *per-healthy-replica* pending load crosses a soft limit
    that depends on the request's priority, so background traffic backs
    off while interactive traffic still flows — and the fleet watermark
    (the hard limit here, which should sit at or below it) is reached
    only when even top-priority load exceeds capacity.

    Parameters
    ----------
    soft_limit:
        Pending requests per healthy replica at which **priority 0**
        (lowest) requests shed.
    hard_limit:
        Pending requests per healthy replica at which *every* priority
        sheds.  Set it at (or just below) the backend's
        ``shed_watermark`` so the gateway's refusal — which carries a
        backoff hint — always fires before the fleet's bare one.
    levels:
        Number of priority classes; priorities clamp to
        ``[0, levels - 1]``.  The shed threshold interpolates linearly
        from ``soft_limit`` (priority 0) to ``hard_limit`` (top
        priority).
    retry_after_base / retry_after_max:
        The deterministic backoff hint: ``retry_after_base * (1 +
        overshoot)`` seconds, capped at ``retry_after_max``, where
        ``overshoot`` is how many requests-per-replica past the
        threshold the fleet currently is.  Deterministic (no jitter)
        for the same reason the retry/restart policies are — admission
        decisions replay exactly in tests.
    """

    soft_limit: int = 8
    hard_limit: int = 16
    levels: int = 3
    retry_after_base: float = 0.05
    retry_after_max: float = 2.0

    def __post_init__(self) -> None:
        if self.soft_limit < 1:
            raise ValueError(
                f"soft_limit must be >= 1, got {self.soft_limit}"
            )
        if self.hard_limit < self.soft_limit:
            raise ValueError(
                f"hard_limit ({self.hard_limit}) must be >= "
                f"soft_limit ({self.soft_limit})"
            )
        if self.levels < 1:
            raise ValueError(f"levels must be >= 1, got {self.levels}")
        if self.retry_after_base < 0 or self.retry_after_max < 0:
            raise ValueError(
                "retry_after_base/retry_after_max must be >= 0"
            )

    def clamp_priority(self, priority: int) -> int:
        """Clamp a requested priority into ``[0, levels - 1]``."""
        return max(0, min(int(priority), self.levels - 1))

    def shed_threshold(self, priority: int) -> float:
        """Pending-per-healthy-replica load at which this priority
        sheds (linear from ``soft_limit`` to ``hard_limit``)."""
        p = self.clamp_priority(priority)
        if self.levels == 1:
            return float(self.soft_limit)
        return self.soft_limit + (
            (self.hard_limit - self.soft_limit) * p / (self.levels - 1)
        )

    def should_shed(
        self, total_depth: int, healthy: int, priority: int = 0
    ) -> bool:
        """Shed one request of ``priority`` given ``total_depth``
        requests pending across ``healthy`` replicas?  A fleet with no
        healthy replica always sheds (the submit would only raise
        :class:`~repro.serve.errors.FleetUnavailable` deeper in)."""
        if healthy < 1:
            return True
        return (total_depth / healthy) >= self.shed_threshold(priority)

    def retry_after(
        self, total_depth: int, healthy: int, priority: int = 0
    ) -> float:
        """Deterministic backoff hint (seconds) for one shed request."""
        if healthy < 1:
            return self.retry_after_max
        overshoot = max(
            0.0,
            total_depth / healthy - self.shed_threshold(priority),
        )
        return min(
            self.retry_after_max,
            self.retry_after_base * (1.0 + overshoot),
        )


@race_checked
class FleetHealth:
    """Thread-safe per-slot health registry the routing step consults.

    Parameters
    ----------
    slots:
        Number of replica/worker slots (fixed for the fleet's life —
        respawn refills a slot, it never grows the fleet).

    Thread safety
    -------------
    Every method takes one internal lock; :meth:`mask` and
    :attr:`states` are point-in-time samples (routing must tolerate a
    mask a few microseconds stale, exactly as it tolerates stale queue
    depths).
    """

    _GUARDED_BY = {"_states": "_lock", "_restart_attempts": "_lock"}

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self._lock = threading.Lock()
        self._states = [HealthState.HEALTHY] * slots
        self._restart_attempts = [0] * slots

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def states(self) -> tuple[HealthState, ...]:
        """The current state of every slot."""
        with self._lock:
            return tuple(self._states)

    def state(self, slot: int) -> HealthState:
        """The current state of one slot."""
        with self._lock:
            return self._states[slot]

    def mask(self) -> tuple[bool, ...]:
        """``True`` per slot that is admitting requests (HEALTHY)."""
        with self._lock:
            return tuple(s is HealthState.HEALTHY for s in self._states)

    @property
    def healthy_count(self) -> int:
        """Number of slots currently admitting requests."""
        with self._lock:
            return sum(
                s is HealthState.HEALTHY for s in self._states
            )

    def any_recoverable(self) -> bool:
        """True when at least one slot is DEGRADED — capacity that a
        pending respawn will bring back (EJECTED slots never return)."""
        with self._lock:
            return any(s is HealthState.DEGRADED for s in self._states)

    def restart_attempts(self, slot: int) -> int:
        """Restarts attempted for this slot so far (circuit-breaker
        progress)."""
        with self._lock:
            return self._restart_attempts[slot]

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def mark_healthy(self, slot: int) -> None:
        """Slot is admitting requests again (fresh or respawned worker).

        An EJECTED slot stays ejected — the circuit breaker is a
        one-way door; build a new fleet to recover it.
        """
        with self._lock:
            if self._states[slot] is not HealthState.EJECTED:
                self._states[slot] = HealthState.HEALTHY

    def mark_degraded(self, slot: int) -> None:
        """Slot is temporarily out of rotation (worker died; respawn
        pending).  EJECTED slots stay ejected."""
        with self._lock:
            if self._states[slot] is not HealthState.EJECTED:
                self._states[slot] = HealthState.DEGRADED

    def eject(self, slot: int) -> None:
        """Permanently remove a slot from rotation (circuit breaker, or
        an operator draining a replica for maintenance)."""
        with self._lock:
            self._states[slot] = HealthState.EJECTED

    def record_restart_attempt(self, slot: int) -> int:
        """Count one restart attempt for a slot; returns the new total
        (the supervisor compares it against
        :attr:`RestartPolicy.max_restarts`)."""
        with self._lock:
            self._restart_attempts[slot] += 1
            return self._restart_attempts[slot]
