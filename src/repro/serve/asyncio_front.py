"""Asyncio front-end over the micro-batching (and sharded) solve services.

The synchronous clients of :class:`~repro.serve.service.SolveService`
block a thread per in-flight request (``ticket.result()``).  A
coroutine-based application — the natural shape of a request-serving
host — wants thousands of in-flight solves on one event loop with no
busy-waiting and no thread-per-request.  :class:`AsyncSolveService`
provides that without touching the batching core: the same
:class:`~repro.serve.scheduler.MicroBatcher` queues, the same dispatcher
threads, the same bit-identical results.

The bridge works ticket-by-ticket:

1. ``submit`` runs the underlying (potentially backpressure-blocking)
   ``service.submit`` on the event loop's default executor, so a full
   queue never stalls the loop itself;
2. a done-callback on the returned
   :class:`~repro.serve.service.SolveTicket` fires on the *dispatcher*
   thread when the batch resolves, and re-enters the event loop via
   ``loop.call_soon_threadsafe`` to complete an :class:`asyncio.Future`;
3. awaiting that future suspends the coroutine — no polling anywhere.

Cancellation is drop-only by design: cancelling the asyncio future
abandons *waiting* for the result, but the request itself stays in its
batch (requests coalesce into one stacked ``cg_solve_batched`` call —
yanking one out would change its batchmates' dispatch, violating the
"batching is invisible" contract).  The transfer callback simply
discards the result of a cancelled future; the batch and every other
ticket in it are unaffected.
"""

from __future__ import annotations

import asyncio
import functools
from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.sem.cg import CGResult
from repro.serve.service import SolveTicket


class AsyncSolveService:
    """Awaitable facade over a solve service (plain or sharded).

    Parameters
    ----------
    service:
        A :class:`~repro.serve.service.SolveService` with
        ``background=True`` or a
        :class:`~repro.serve.shard.ShardedSolveService` (whose replicas
        always run background dispatchers).  Background dispatch is
        *required*, not advised: nothing on the asyncio side ever
        flushes, so a foreground service would strand a lingering
        partial batch — and the futures awaiting it — forever.  The
        front-end does not own the service unless it closes it: leaving
        an ``async with`` block (or awaiting :meth:`aclose`) drains and
        closes the underlying service.

    Thread safety / loop affinity
    -----------------------------
    Every coroutine must run on the loop it awaits on (the usual asyncio
    rule); the underlying service may simultaneously serve synchronous
    threaded clients — the queues are shared and thread-safe.

    Examples
    --------
    >>> async with AsyncSolveService(svc) as asvc:      # doctest: +SKIP
    ...     results = await asvc.solve_many(rhs_block)
    """

    def __init__(self, service) -> None:
        required = ("submit", "close")
        missing = [a for a in required if not hasattr(service, a)]
        if missing:
            raise TypeError(
                f"service {type(service).__name__} lacks {missing}; "
                "expected a SolveService or ShardedSolveService"
            )
        # A foreground SolveService never dispatches partial batches on
        # its own, and no coroutine here ever flushes — awaiting such a
        # service would hang forever on the first non-full batch.
        # (ShardedSolveService has no `background` attribute; its
        # replicas always run dispatchers.)
        if getattr(service, "background", True) is False:
            raise ValueError(
                "AsyncSolveService requires a background-dispatching "
                "service (SolveService(..., background=True) or a "
                "ShardedSolveService); a foreground service would leave "
                "partial batches — and their awaited futures — unresolved"
            )
        self.service = service

    # ------------------------------------------------------------------
    async def submit(
        self,
        b: NDArray[np.float64],
        tol: float | None = None,
        maxiter: int | None = None,
        key: object | None = None,
        deadline: float | None = None,
        precision: str | None = None,
    ) -> "asyncio.Future[CGResult]":
        """Queue one right-hand side; returns an awaitable future.

        Parameters
        ----------
        b:
            Right-hand side of shape ``(n_dofs,)`` (copied at
            submission).
        tol / maxiter:
            Per-request overrides forwarded to the service.
        key:
            Routing key, forwarded only when set (sharded services route
            by it; plain services take no ``key`` argument).
        deadline:
            Optional time budget in seconds, forwarded to the service;
            an expired request rejects the future with
            :class:`~repro.serve.errors.DeadlineExceeded`.
        precision:
            Per-request solve policy override (``"fp64"`` or
            ``"mixed"``), forwarded to the service; mixed futures
            resolve to a :class:`~repro.sem.cg.MixedCGResult`.

        Returns
        -------
        asyncio.Future
            Resolves to the request's :class:`~repro.sem.cg.CGResult`
            on the calling loop, or raises the batch's exception.
            Cancelling it abandons the wait without disturbing the
            request's batch.

        Raises
        ------
        ValueError
            Invalid shape/``tol``/``maxiter``/``deadline`` (surfaced
            here, before any future exists).
        ~repro.serve.errors.ServiceClosed
            If the service has been closed.
        ~repro.serve.errors.Overloaded
            If admission control shed the request (retryable).

        Notes
        -----
        The blocking ``service.submit`` (it parks on backpressure when
        the queue is at ``max_pending``) runs on the loop's default
        executor, so a full queue suspends this coroutine — never the
        event loop.
        """
        loop = asyncio.get_running_loop()
        call = (
            functools.partial(
                self.service.submit, b, tol=tol, maxiter=maxiter,
                key=key, deadline=deadline, precision=precision,
            )
            if key is not None
            else functools.partial(
                self.service.submit, b, tol=tol, maxiter=maxiter,
                deadline=deadline, precision=precision,
            )
        )
        ticket = await loop.run_in_executor(None, call)
        return _ticket_to_future(ticket, loop)

    async def solve(
        self,
        b: NDArray[np.float64],
        tol: float | None = None,
        maxiter: int | None = None,
        key: object | None = None,
        deadline: float | None = None,
        precision: str | None = None,
    ) -> CGResult:
        """Submit one request and await its result.

        Returns
        -------
        ~repro.sem.cg.CGResult
            Bit-identical to a sequential warm
            :func:`~repro.sem.cg.cg_solve` of the same system.
        """
        future = await self.submit(
            b, tol=tol, maxiter=maxiter, key=key, deadline=deadline,
            precision=precision,
        )
        return await future

    async def solve_many(
        self,
        bs,
        tol: float | None = None,
        maxiter: int | None = None,
        keys: Sequence[object] | None = None,
        deadline: float | None = None,
        precision: str | None = None,
    ) -> list[CGResult]:
        """Solve a block of right-hand sides concurrently; input order.

        All requests are submitted before any result is awaited, so they
        coalesce into full batches exactly as a threaded burst would.

        Parameters
        ----------
        bs:
            ``(M, n)`` array or sequence of ``(n,)`` vectors.
        tol / maxiter:
            Shared per-request overrides.
        keys:
            Optional per-request routing keys (``len(keys) == M``).
        deadline:
            Shared per-request time budget in seconds.
        precision:
            Shared per-request solve policy override.

        Returns
        -------
        list of ~repro.sem.cg.CGResult
        """
        if keys is not None and len(keys) != len(bs):
            raise ValueError(
                f"keys length {len(keys)} != number of requests {len(bs)}"
            )
        # Submit concurrently: serializing M executor round-trips would
        # add per-request loop hops and trickle-feed the batchers.
        futures = await asyncio.gather(*(
            self.submit(
                b, tol=tol, maxiter=maxiter,
                key=None if keys is None else keys[i],
                deadline=deadline, precision=precision,
            )
            for i, b in enumerate(bs)
        ))
        return list(await asyncio.gather(*futures))

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The underlying service's stats snapshot (aggregate for a
        sharded service)."""
        return self.service.stats

    async def aclose(self) -> None:
        """Drain and close the underlying service without blocking the
        loop (the close — queue drain + dispatcher join — runs on the
        default executor).  Idempotent, like ``service.close``."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.service.close)

    async def __aenter__(self) -> "AsyncSolveService":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()


def _ticket_to_future(
    ticket: SolveTicket, loop: asyncio.AbstractEventLoop
) -> "asyncio.Future[CGResult]":
    """Bridge a resolved-on-any-thread ticket to a loop-bound future.

    The ticket's done-callback runs on the resolving thread (dispatcher
    or flushing client); it reads the outcome there (non-blocking — the
    ticket is done) and hops to the event loop via
    ``call_soon_threadsafe`` to complete the future.  A future the
    caller has already cancelled is left alone — the solve result is
    simply dropped, and the request's batchmates never notice.
    """
    future: "asyncio.Future[CGResult]" = loop.create_future()
    # The gateway's deadline enforcement needs the underlying ticket:
    # cancelling only the asyncio future abandons the *wait*, while
    # ticket.cancel() marks the request itself disowned (still
    # drop-only) so the process shard's watchdog can reclaim its
    # staged ring slot.
    future.solve_ticket = ticket  # type: ignore[attr-defined]

    def transfer(done: SolveTicket) -> None:  # dispatcher thread
        # A ticket cancelled through the synchronous API has no outcome
        # to read (exception() would raise CancelledError here, on the
        # dispatcher thread); propagate the cancellation to the future.
        ticket_cancelled = done.cancelled()
        error = None if ticket_cancelled else done.exception()

        def apply() -> None:  # event-loop thread
            if future.cancelled():
                return  # drop-only cancellation
            if ticket_cancelled:
                future.cancel()
            elif error is not None:
                future.set_exception(error)
            else:
                future.set_result(done.result())

        try:
            loop.call_soon_threadsafe(apply)
        except RuntimeError:
            # The loop shut down while requests were in flight; there is
            # nobody left to deliver to.  The solve itself completed
            # normally (the ticket holds the result).
            pass

    ticket.add_done_callback(transfer)
    return future
