"""Service-side counters for the micro-batching solve service.

The paper's serving story is throughput: how many solves per second the
device sustains when the host keeps its pipeline full.  The stats here
make that observable on the CPU substrate — every
:class:`~repro.serve.service.SolveService` owns a :class:`ServiceStats`
accumulator and exposes immutable :class:`StatsSnapshot` views of it
(queue depth, the batch-size histogram that shows how well coalescing is
working, and solves per second).  Sharded services
(:class:`~repro.serve.shard.ShardedSolveService`) aggregate one snapshot
per replica into a fleet view with :func:`merge_snapshots`.

Thread safety
-------------
Every mutator and :meth:`ServiceStats.snapshot` take the accumulator's
internal lock, so a snapshot is always a *consistent* cut: the batch
histogram always sums to ``completed + failed``, never to a value read
mid-update.  The live queue depth is sampled through
:attr:`ServiceStats.depth_fn` inside that same critical section — the
depth reported by a snapshot is the queue's length at snapshot time,
not a stale value recorded by whichever dispatcher thread last touched
the counters.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable


def perf_epoch_offset() -> float:
    """This process's ``time.time() - time.perf_counter()`` right now.

    ``time.perf_counter()`` has an arbitrary per-process epoch — stamps
    taken in two processes are not comparable, so a fleet window
    computed across raw cross-process stamps is meaningless.  This
    offset maps a process's ``perf_counter`` stamps onto the shared
    wall clock: ship it alongside a snapshot and the receiver rebases
    with :meth:`StatsSnapshot.rebased`, ``delta = sender_offset -
    perf_epoch_offset()`` — after which the sender's stamps read as if
    taken on the receiver's own ``perf_counter``.

    The mapping is as accurate as the two wall clocks agree (exact on
    one host, which is the process-shard's deployment unit).
    """
    # The one sanctioned wall-clock read in serve/: this *is* the rebase
    # helper the rule points everyone else at.
    return time.time() - time.perf_counter()  # lint: ignore[wall-clock] -- epoch rebase helper itself


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable view of a service's counters at one instant.

    Attributes
    ----------
    submitted / completed / failed:
        Request counts.  ``failed`` counts requests whose batch raised
        (e.g. a CG breakdown); their tickets re-raise the error.
    batches:
        Number of stacked ``cg_solve_batched`` dispatches executed.
    batch_histogram:
        ``{batch_size: count}`` — the coalescing fingerprint.  All mass
        at 1 means micro-batching never kicked in; mass at ``max_batch``
        means the pipeline stayed full.
    queue_depth / max_queue_depth:
        Pending requests at snapshot time / high-water mark.
    busy_seconds:
        Total wall time spent inside batched solves.
    wall_seconds:
        Wall time from the first submission to the latest completion.
    first_submit / last_done:
        ``time.perf_counter()`` stamps of the first submission and the
        latest completion (``None`` before any traffic).
        :func:`merge_snapshots` uses them to compute the true fleet
        activity window even when replicas were busy at disjoint times.
        ``perf_counter``'s epoch is only comparable *within one
        process* — before merging snapshots that crossed a process
        boundary, rebase them onto the receiving process's clock with
        :meth:`rebased` + :func:`perf_epoch_offset` (the process-level
        shard does this at snapshot-transfer time).
    expired / retries / restarts / shed:
        Resilience counters.  ``expired`` — requests whose deadline
        tripped before a solve started (they are neither completed nor
        failed: ``completed + failed + expired <= submitted``).
        ``retries`` — crash-lost requests transparently resubmitted.
        ``restarts`` — dead workers respawned into their slot.
        ``shed`` — requests refused at admission with
        :class:`~repro.serve.errors.Overloaded` (not counted in
        ``submitted``; they never entered a queue).
    copy_bytes:
        Request-payload bytes copied through a serialization/transport
        hop on their way to a solver (pickled rhs vectors crossing a
        pipe, staging snapshots taken because the transport cannot hold
        a view).  The zero-copy audit counter: the process shard's
        ``transport="pipe"`` path adds every shipped rhs here, the
        shared-memory ring path adds **zero** — clients write straight
        into ring slots and workers solve views of them.  Solve-side
        work (batch assembly stacking, the worker's in-place write of
        ``x`` back into its slot) is not transport and is not counted.
    tenant_iterations:
        Per-tenant solve-cost history:
        ``{(tenant, tol, precision): (count, iterations_sum)}``.  The
        raw material of cost-predicted scheduling — a
        :class:`~repro.serve.costmodel.CostModel` warm-starts from it
        via :meth:`~repro.serve.costmodel.CostModel.from_stats`.
        Recorded by whichever layer knows the tenant (the gateway;
        plain services never learn tenant identities), so most
        service-level snapshots carry an empty mapping.
    """

    submitted: int
    completed: int
    failed: int
    batches: int
    batch_histogram: dict[int, int]
    queue_depth: int
    max_queue_depth: int
    busy_seconds: float
    wall_seconds: float
    first_submit: float | None = None
    last_done: float | None = None
    expired: int = 0
    retries: int = 0
    restarts: int = 0
    shed: int = 0
    copy_bytes: int = 0
    tenant_iterations: dict[tuple, tuple[int, float]] = field(
        default_factory=dict
    )

    @property
    def solves_per_second(self) -> float:
        """Completed requests per wall-clock second (first submit to
        latest completion); ``0.0`` before anything completes."""
        if self.completed == 0 or self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests coalesced per dispatch."""
        if self.batches == 0:
            return 0.0
        return (self.completed + self.failed) / self.batches

    def rebased(self, delta: float) -> "StatsSnapshot":
        """This snapshot with its clock stamps shifted by ``delta``.

        The cross-process fix-up for :attr:`first_submit` /
        :attr:`last_done`: ``perf_counter`` epochs differ per process,
        so a receiver merges foreign snapshots only after shifting
        their stamps onto its own clock, ``delta = sender's
        perf_epoch_offset() - receiver's perf_epoch_offset()``.
        Durations (``wall_seconds``, ``busy_seconds``) are epoch-free
        and unchanged; ``None`` stamps stay ``None``.
        """
        if delta == 0.0 or (
            self.first_submit is None and self.last_done is None
        ):
            return self
        return replace(
            self,
            first_submit=(
                None if self.first_submit is None
                else self.first_submit + delta
            ),
            last_done=(
                None if self.last_done is None else self.last_done + delta
            ),
        )


def merge_snapshots(snapshots: Iterable[StatsSnapshot]) -> StatsSnapshot:
    """Aggregate per-replica snapshots into one fleet-level snapshot.

    Counters and busy time sum across replicas, the batch histograms
    merge, queue depth sums (total requests pending anywhere), the
    high-water mark takes the per-replica maximum, and ``wall_seconds``
    spans the true fleet activity window — earliest ``first_submit`` to
    latest ``last_done`` across replicas — so replicas busy at
    *disjoint* times are not double-credited (falling back to the
    longest per-replica wall for snapshots without stamps).
    Consequently ``solves_per_second`` of the merged snapshot reads as
    aggregate fleet throughput.

    Parameters
    ----------
    snapshots:
        Any iterable of :class:`StatsSnapshot` (typically one per
        replica, each internally consistent).  An empty iterable yields
        an all-zero snapshot.

    Returns
    -------
    StatsSnapshot
        The aggregate view.  Note that the *set* of snapshots is not
        atomic across replicas — each replica's cut is consistent, but
        replica A's may be microseconds older than replica B's.
    """
    submitted = completed = failed = batches = 0
    expired = retries = restarts = shed = copy_bytes = 0
    histogram: dict[int, int] = {}
    tenants: dict[tuple, tuple[int, float]] = {}
    queue_depth = max_queue_depth = 0
    busy = wall = 0.0
    firsts: list[float] = []
    lasts: list[float] = []
    for snap in snapshots:
        submitted += snap.submitted
        completed += snap.completed
        failed += snap.failed
        batches += snap.batches
        expired += snap.expired
        retries += snap.retries
        restarts += snap.restarts
        shed += snap.shed
        copy_bytes += snap.copy_bytes
        for size, count in snap.batch_histogram.items():
            histogram[size] = histogram.get(size, 0) + count
        for key, (count, total) in snap.tenant_iterations.items():
            have = tenants.get(key, (0, 0.0))
            tenants[key] = (have[0] + count, have[1] + total)
        queue_depth += snap.queue_depth
        max_queue_depth = max(max_queue_depth, snap.max_queue_depth)
        busy += snap.busy_seconds
        wall = max(wall, snap.wall_seconds)
        if snap.first_submit is not None:
            firsts.append(snap.first_submit)
        if snap.last_done is not None:
            lasts.append(snap.last_done)
    if firsts and lasts:
        # The true fleet window: replicas active at disjoint times must
        # not inflate solves/s (max-of-walls would credit 200 solves
        # spread over 6 s as if they fit in the busiest 1 s window).
        wall = max(wall, max(lasts) - min(firsts))
    first_submit = min(firsts) if firsts else None
    last_done = max(lasts) if lasts else None
    # Per-replica high-water marks don't sum (they peaked at different
    # times), but the fleet mark must at least cover what is pending
    # right now, or the merged snapshot would contradict itself
    # (queue_depth > max_queue_depth).
    max_queue_depth = max(max_queue_depth, queue_depth)
    return StatsSnapshot(
        submitted=submitted,
        completed=completed,
        failed=failed,
        batches=batches,
        batch_histogram=histogram,
        queue_depth=queue_depth,
        max_queue_depth=max_queue_depth,
        busy_seconds=busy,
        wall_seconds=wall,
        first_submit=first_submit,
        last_done=last_done,
        expired=expired,
        retries=retries,
        restarts=restarts,
        shed=shed,
        copy_bytes=copy_bytes,
        tenant_iterations=tenants,
    )


@dataclass
class ServiceStats:
    """Thread-safe accumulator behind :class:`StatsSnapshot`.

    Parameters
    ----------
    depth_fn:
        Optional zero-argument callable returning the *live* pending
        count (e.g. ``lambda: len(batcher)``).  When set, snapshots
        report the queue depth sampled inside the stats lock at snapshot
        time; without it they fall back to the depth recorded by the
        last mutator — which can be stale when many threads interleave
        ``submit`` and batch completion (two threads may record depths
        in the opposite order they were observed).

    Thread safety
    -------------
    All mutators take the internal lock; :meth:`snapshot` returns a
    consistent frozen copy (histogram mass always equals
    ``completed + failed``).  Submissions may come from any client
    thread, completions from the dispatcher (or a flushing client).
    """

    depth_fn: Callable[[], int] | None = None

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _submitted: int = 0  # guarded-by: _lock
    _completed: int = 0  # guarded-by: _lock
    _failed: int = 0  # guarded-by: _lock
    _batches: int = 0  # guarded-by: _lock
    _histogram: dict[int, int] = field(default_factory=dict, repr=False)  # guarded-by: _lock
    _queue_depth: int = 0  # guarded-by: _lock
    _max_queue_depth: int = 0  # guarded-by: _lock
    _busy_seconds: float = 0.0  # guarded-by: _lock
    _first_submit: float | None = None  # guarded-by: _lock
    _last_done: float | None = None  # guarded-by: _lock
    _expired: int = 0  # guarded-by: _lock
    _copy_bytes: int = 0  # guarded-by: _lock
    _tenant_hist: dict[tuple, tuple[int, float]] = field(  # guarded-by: _lock
        default_factory=dict, repr=False
    )

    def record_submit(self, queue_depth: int | None = None) -> None:
        """One request is being submitted.

        Call *before* the request is enqueued: counting first guarantees
        no snapshot ever shows ``completed + failed > submitted``, which
        could otherwise happen if a fast dispatcher solved the request
        between its enqueue and its accounting.  Follow up with
        :meth:`record_depth` once the enqueue reports the depth (or pass
        ``queue_depth`` directly when the depth is already known), and
        roll back with :meth:`record_rejected` if the enqueue raises.

        Parameters
        ----------
        queue_depth:
            Optional queue depth including the request; feeds the
            high-water mark (and the fallback depth when no
            :attr:`depth_fn` is configured).
        """
        with self._lock:
            self._submitted += 1
            if queue_depth is not None:
                self._queue_depth = queue_depth
                self._max_queue_depth = max(
                    self._max_queue_depth, queue_depth
                )
            if self._first_submit is None:
                self._first_submit = time.perf_counter()

    def record_depth(self, queue_depth: int) -> None:
        """Feed one observed queue depth into the high-water mark."""
        with self._lock:
            self._queue_depth = queue_depth
            self._max_queue_depth = max(self._max_queue_depth, queue_depth)

    def record_rejected(self) -> None:
        """Roll back one :meth:`record_submit` whose enqueue failed
        (e.g. the queue was closed while the producer blocked).

        If the rejected request was the only traffic ever seen, the
        wall-clock anchor is reset too — otherwise a phantom first
        submission would stretch ``wall_seconds`` (and deflate
        ``solves_per_second``) for the accumulator's lifetime.
        """
        with self._lock:
            self._submitted -= 1
            if self._submitted == 0 and self._batches == 0:
                self._first_submit = None

    def record_expired(self, count: int = 1) -> None:
        """``count`` requests' deadlines tripped before a solve started.

        Expired requests never reach a batched dispatch, so they stay
        out of the batch histogram and do not touch ``last_done`` (no
        solve happened); they keep ``completed + failed + expired <=
        submitted`` balanced instead of leaking "submitted but never
        resolved" ghosts.
        """
        with self._lock:
            self._expired += count

    def record_tenant(
        self,
        tenant: object | None,
        tol: float | None,
        precision: str | None,
        iterations: float,
    ) -> None:
        """One tenant-attributed solve completed in ``iterations``.

        Accumulates the per-key ``(count, iterations_sum)`` history
        behind :attr:`StatsSnapshot.tenant_iterations`.  Called by the
        layer that knows the tenant (the gateway's completion hook) —
        the batching services themselves never see tenant identities.
        """
        with self._lock:
            key = (tenant, tol, precision)
            count, total = self._tenant_hist.get(key, (0, 0.0))
            self._tenant_hist[key] = (
                count + 1, total + float(iterations)
            )

    def record_copy_bytes(self, nbytes: int) -> None:
        """``nbytes`` of request payload crossed a copying transport hop
        (see :attr:`StatsSnapshot.copy_bytes`).  Zero-copy paths simply
        never call this."""
        with self._lock:
            self._copy_bytes += nbytes

    def record_batch(
        self,
        size: int,
        seconds: float,
        queue_depth: int,
        failed: bool = False,
    ) -> None:
        """One stacked dispatch of ``size`` requests finished.

        Parameters
        ----------
        size:
            Number of requests in the dispatched batch.
        seconds:
            Wall time the batched solve took.
        queue_depth:
            Pending count observed after the batch was popped (fallback
            depth when no :attr:`depth_fn` is configured).
        failed:
            True when the batch raised — its ``size`` requests count as
            failed instead of completed.
        """
        with self._lock:
            self._batches += 1
            self._histogram[size] = self._histogram.get(size, 0) + 1
            self._busy_seconds += seconds
            self._queue_depth = queue_depth
            if failed:
                self._failed += size
            else:
                self._completed += size
            self._last_done = time.perf_counter()

    def snapshot(self) -> StatsSnapshot:
        """A consistent frozen copy of every counter.

        Returns
        -------
        StatsSnapshot
            All counters cut under one lock acquisition; the queue depth
            is the live :attr:`depth_fn` sample (taken inside the same
            critical section) when one is configured.
        """
        with self._lock:
            if self._first_submit is None or self._last_done is None:
                wall = 0.0
            else:
                wall = max(0.0, self._last_done - self._first_submit)
            depth = (
                int(self.depth_fn())
                if self.depth_fn is not None
                else self._queue_depth
            )
            # Persist a live sample that tops the recorded high-water
            # mark, so the mark never shrinks between successive
            # snapshots (it is a monotone peak, not a rolling view).
            self._max_queue_depth = max(self._max_queue_depth, depth)
            return StatsSnapshot(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                batches=self._batches,
                batch_histogram=dict(self._histogram),
                queue_depth=depth,
                max_queue_depth=self._max_queue_depth,
                busy_seconds=self._busy_seconds,
                wall_seconds=wall,
                first_submit=self._first_submit,
                last_done=self._last_done,
                expired=self._expired,
                copy_bytes=self._copy_bytes,
                tenant_iterations=dict(self._tenant_hist),
            )
