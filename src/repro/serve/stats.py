"""Service-side counters for the micro-batching solve service.

The paper's serving story is throughput: how many solves per second the
device sustains when the host keeps its pipeline full.  The stats here
make that observable on the CPU substrate — every
:class:`~repro.serve.service.SolveService` owns a :class:`ServiceStats`
accumulator and exposes immutable :class:`StatsSnapshot` views of it
(queue depth, the batch-size histogram that shows how well coalescing is
working, and solves per second).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable view of a service's counters at one instant.

    Attributes
    ----------
    submitted / completed / failed:
        Request counts.  ``failed`` counts requests whose batch raised
        (e.g. a CG breakdown); their tickets re-raise the error.
    batches:
        Number of stacked ``cg_solve_batched`` dispatches executed.
    batch_histogram:
        ``{batch_size: count}`` — the coalescing fingerprint.  All mass
        at 1 means micro-batching never kicked in; mass at ``max_batch``
        means the pipeline stayed full.
    queue_depth / max_queue_depth:
        Pending requests now / high-water mark.
    busy_seconds:
        Total wall time spent inside batched solves.
    wall_seconds:
        Wall time from the first submission to the latest completion.
    """

    submitted: int
    completed: int
    failed: int
    batches: int
    batch_histogram: dict[int, int]
    queue_depth: int
    max_queue_depth: int
    busy_seconds: float
    wall_seconds: float

    @property
    def solves_per_second(self) -> float:
        """Completed requests per wall-clock second (first submit to
        latest completion); ``0.0`` before anything completes."""
        if self.completed == 0 or self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests coalesced per dispatch."""
        if self.batches == 0:
            return 0.0
        return (self.completed + self.failed) / self.batches


@dataclass
class ServiceStats:
    """Thread-safe accumulator behind :class:`StatsSnapshot`.

    All mutators take the internal lock; :meth:`snapshot` returns a
    consistent frozen copy.  Submissions may come from any client
    thread, completions from the dispatcher (or a flushing client).
    """

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _submitted: int = 0
    _completed: int = 0
    _failed: int = 0
    _batches: int = 0
    _histogram: dict[int, int] = field(default_factory=dict, repr=False)
    _queue_depth: int = 0
    _max_queue_depth: int = 0
    _busy_seconds: float = 0.0
    _first_submit: float | None = None
    _last_done: float | None = None

    def record_submit(self, queue_depth: int) -> None:
        """One request entered the queue (``queue_depth`` includes it)."""
        with self._lock:
            self._submitted += 1
            self._queue_depth = queue_depth
            self._max_queue_depth = max(self._max_queue_depth, queue_depth)
            if self._first_submit is None:
                self._first_submit = time.perf_counter()

    def record_batch(
        self,
        size: int,
        seconds: float,
        queue_depth: int,
        failed: bool = False,
    ) -> None:
        """One stacked dispatch of ``size`` requests finished."""
        with self._lock:
            self._batches += 1
            self._histogram[size] = self._histogram.get(size, 0) + 1
            self._busy_seconds += seconds
            self._queue_depth = queue_depth
            if failed:
                self._failed += size
            else:
                self._completed += size
            self._last_done = time.perf_counter()

    def snapshot(self) -> StatsSnapshot:
        """A consistent frozen copy of every counter."""
        with self._lock:
            if self._first_submit is None or self._last_done is None:
                wall = 0.0
            else:
                wall = max(0.0, self._last_done - self._first_submit)
            return StatsSnapshot(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                batches=self._batches,
                batch_histogram=dict(self._histogram),
                queue_depth=self._queue_depth,
                max_queue_depth=self._max_queue_depth,
                busy_seconds=self._busy_seconds,
                wall_seconds=wall,
            )
