"""repro — reproduction of *High-Performance Spectral Element Methods on
Field-Programmable Gate Arrays* (Karp et al., IPDPS 2021).

The package provides four layers:

``repro.sem``
    The Spectral Element Method numerics substrate: Gauss-Lobatto-Legendre
    quadrature, spectral differentiation, hexahedral meshes, geometric
    factors, the matrix-free local Poisson operator ``Ax`` of
    Nekbone/Nek5000 (Listing 1 of the paper), gather-scatter and a
    Jacobi-preconditioned conjugate-gradient solver.

``repro.serve``
    The multi-tenant serving layer: a dynamic micro-batching
    :class:`~repro.serve.SolveService` that coalesces independent solve
    requests into warm batched CG dispatches, with workspace pooling,
    backpressure and throughput stats.

``repro.hls``
    A small high-level-synthesis modeling substrate: loop nests, unrolling,
    on-chip-memory arbitration analysis and initiation-interval scheduling.
    The paper's ``T = 2^k`` / ``(N+1) mod T = 0`` throughput constraint is
    *derived* here rather than hard-coded.

``repro.core``
    The paper's primary contribution: the FPGA SEM-accelerator (functional
    cycle-level simulator with on-chip BRAM, external-memory banking, and
    a pipelined datapath) plus the Section-IV performance model
    (cost/intensity, resource, throughput, padding, power, roofline).

``repro.hardware``
    The evaluation substrate: the Table-II architecture catalog, FPGA device
    descriptions (Stratix 10 GX2800, Agilex 027, Stratix 10M, the paper's
    hypothetical "ideal" FPGA) and analytic CPU/GPU execution-time models
    used to regenerate the comparison figures.

``repro.experiments``
    Drivers that regenerate every table and figure of the paper's
    evaluation section (``python -m repro.experiments <table1|table2|fig1|
    fig2|fig3|ablations|all>``).
"""

from repro.sem import (
    ReferenceElement,
    gll_points_and_weights,
    derivative_matrix,
    BoxMesh,
    geometric_factors,
    ax_local,
    ax_local_listing1,
    ax_local_matmul,
    get_ax_kernel,
    available_ax_kernels,
    SolverWorkspace,
    PoissonProblem,
    cg_solve,
    cg_solve_batched,
    BatchedCGResult,
)
from repro.serve import SolveService, SolveTicket
from repro.core import (
    KernelCost,
    operational_intensity,
    flops_per_dof,
    bytes_per_dof,
    PerformanceModel,
    padding_gain,
    Roofline,
)
from repro.core.accel import (
    AcceleratorConfig,
    SEMAccelerator,
    SynthesisReport,
)
from repro.hardware import (
    ArchSpec,
    SYSTEM_CATALOG,
    FPGADevice,
    STRATIX10_GX2800,
    AGILEX_027,
    STRATIX10_M,
    IDEAL_FPGA,
    HostExecutionModel,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # sem
    "ReferenceElement",
    "gll_points_and_weights",
    "derivative_matrix",
    "BoxMesh",
    "geometric_factors",
    "ax_local",
    "ax_local_listing1",
    "ax_local_matmul",
    "get_ax_kernel",
    "available_ax_kernels",
    "SolverWorkspace",
    "PoissonProblem",
    "cg_solve",
    "cg_solve_batched",
    "BatchedCGResult",
    # serve
    "SolveService",
    "SolveTicket",
    # core
    "KernelCost",
    "operational_intensity",
    "flops_per_dof",
    "bytes_per_dof",
    "PerformanceModel",
    "padding_gain",
    "Roofline",
    "AcceleratorConfig",
    "SEMAccelerator",
    "SynthesisReport",
    # hardware
    "ArchSpec",
    "SYSTEM_CATALOG",
    "FPGADevice",
    "STRATIX10_GX2800",
    "AGILEX_027",
    "STRATIX10_M",
    "IDEAL_FPGA",
    "HostExecutionModel",
]
