"""E-F1 — regenerate Fig. 1: GFLOP/s vs problem size, 8 degrees x 9 systems.

Each subplot (a)-(h) of the paper is one polynomial degree; each curve is
one system swept over the number of elements.  The FPGA curve comes from
the accelerator simulator, the host curves from the execution-time
models.  The driver also extracts the crossover claims the paper makes
(who beats whom at which degree / size bracket).
"""

from __future__ import annotations

from repro.core.accel import AcceleratorConfig, SEMAccelerator
from repro.core.calibration import TABLE1_DEGREES
from repro.experiments.common import ExperimentResult, Series
from repro.hardware.catalog import CATALOG_ORDER
from repro.hardware.fpga import STRATIX10_GX2800
from repro.hardware.hostmodel import HostExecutionModel

#: Problem sizes swept (log-spaced, the paper's 10..10000 x-range).
DEFAULT_SIZES: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)

#: Systems drawn in Fig. 1 (all of Table II).
FIG1_SYSTEMS: tuple[str, ...] = CATALOG_ORDER


def fpga_curve(n: int, sizes: tuple[int, ...]) -> Series:
    """SEM-accelerator GFLOP/s over problem sizes for degree ``n``."""
    acc = SEMAccelerator(AcceleratorConfig.banked(n), STRATIX10_GX2800)
    ys = tuple(acc.performance(e).gflops_end_to_end for e in sizes)
    return Series(
        name="SEM-Acc (FPGA)",
        x=tuple(float(e) for e in sizes),
        y=ys,
        meta={"N": n, "system": "SEM-Acc (FPGA)"},
    )


def host_curve(name: str, n: int, sizes: tuple[int, ...]) -> Series:
    """Host-model GFLOP/s over problem sizes for degree ``n``."""
    model = HostExecutionModel.for_system(name)
    ys = tuple(model.sample(n, e).gflops for e in sizes)
    return Series(
        name=name,
        x=tuple(float(e) for e in sizes),
        y=ys,
        meta={"N": n, "system": name},
    )


def build_fig1(
    degrees: tuple[int, ...] = TABLE1_DEGREES,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
) -> ExperimentResult:
    """Regenerate all Fig. 1 subplots as named series.

    The tabular part summarizes each curve's value at the largest size —
    the numbers the paper's §V-C narrative quotes.
    """
    result = ExperimentResult(
        exp_id="E-F1",
        title="Fig. 1 - observed performance vs problem size",
        headers=["N", "system", f"GF/s@{sizes[-1]}", "GF/s@256", f"GF/s@{sizes[0]}"],
    )
    for n in degrees:
        curves = [fpga_curve(n, sizes)]
        for name in FIG1_SYSTEMS:
            if name == "Stratix GX 2800":
                continue
            curves.append(host_curve(name, n, sizes))
        for c in curves:
            result.add_series(c)
            mid = c.y[sizes.index(256)]
            result.add_row([n, c.name, round(c.y[-1], 1), round(mid, 1), round(c.y[0], 2)])
    result.notes.append(
        "FPGA curve: accelerator simulator (end-to-end, incl. launch); "
        "host curves: calibrated latency-throughput models (DESIGN.md §3)."
    )
    return result


def crossover_summary(result: ExperimentResult) -> list[str]:
    """Extract the qualitative claims of §V-C from the generated curves."""
    notes: list[str] = []
    by_key = {(s.meta["N"], s.meta["system"]): s for s in result.series}

    def at_large(n: int, system: str) -> float:
        return by_key[(n, system)].y[-1]

    for n in (7, 11, 15):
        fpga = at_large(n, "SEM-Acc (FPGA)")
        slower = [
            sys
            for sys in FIG1_SYSTEMS
            if sys != "Stratix GX 2800" and at_large(n, sys) < fpga
        ]
        notes.append(f"N={n}: FPGA ({fpga:.0f} GF/s) beats {', '.join(slower) or 'nobody'}")
    return notes


def main() -> str:
    """CLI entry: render the Fig.-1 regeneration."""
    result = build_fig1()
    result.notes.extend(crossover_summary(result))
    return result.render()
