"""CLI for the experiment drivers: ``python -m repro.experiments <name>``."""

from __future__ import annotations

import sys

from repro.experiments import (
    build_bandwidth_utilization,
    build_dsp_specialization,
    build_fig1,
    build_fig2,
    build_fig3,
    build_gxyz_split,
    build_journey,
    build_memory_layout,
    build_padding,
    build_precision_whatif,
    build_sizing,
    build_stream,
    build_table1,
    build_table2,
)
from repro.experiments import build_pcie_study
from repro.experiments.fig1 import crossover_summary

_DRIVERS = {
    "table1": lambda: build_table1().render(),
    "table2": lambda: build_table2().render(),
    "fig1": lambda: _fig1(),
    "fig2": lambda: build_fig2().render(),
    "fig3": lambda: build_fig3().render(),
    "ablations": lambda: "\n\n".join(
        b().render()
        for b in (build_journey, build_padding, build_memory_layout, build_gxyz_split)
    ),
    "bandwidth": lambda: "\n\n".join(
        b().render() for b in (build_bandwidth_utilization, build_stream)
    ),
    "pcie": lambda: build_pcie_study().render(),
    "whatif": lambda: "\n\n".join(
        b().render()
        for b in (build_precision_whatif, build_dsp_specialization, build_sizing)
    ),
}


def _fig1() -> str:
    result = build_fig1()
    result.notes.extend(crossover_summary(result))
    return result.render()


def main(argv: list[str]) -> int:
    """Dispatch one or all experiment drivers, or export CSVs."""
    if argv and argv[0] == "export":
        from repro.experiments.export import export_all

        out_dir = argv[1] if len(argv) > 1 else "results"
        paths = export_all(out_dir)
        print(f"wrote {len(paths)} files to {out_dir}/")
        return 0
    if len(argv) != 1 or argv[0] not in (*_DRIVERS, "all"):
        names = ", ".join((*_DRIVERS, "all", "export [dir]"))
        print(f"usage: python -m repro.experiments <{names}>", file=sys.stderr)
        return 2
    if argv[0] == "all":
        for name, driver in _DRIVERS.items():
            print(driver())
            print()
    else:
        print(_DRIVERS[argv[0]]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
