"""E-F3 — regenerate Fig. 3: measured vs modeled vs roofline across N.

The paper plots, at 4096 elements: the theoretical roofline of the
Stratix 10 memory system, the model's prediction at the 300 MHz memory
clock and at 70% of it (210 MHz) — a band the measured clocks fall into —
and the measured performance of the eight synthesized kernels.
"""

from __future__ import annotations

from repro.core import ConstraintMode, PerformanceModel, Roofline
from repro.core.accel import AcceleratorConfig, SEMAccelerator
from repro.core.calibration import REFERENCE_ELEMENTS, TABLE1_DEGREES
from repro.experiments.common import ExperimentResult, Series
from repro.hardware.catalog import SYSTEM_CATALOG
from repro.hardware.fpga import STRATIX10_GX2800

#: Degree range of the figure's x-axis.
FIG3_DEGREES: tuple[int, ...] = tuple(range(1, 16))


def build_fig3(num_elements: int = REFERENCE_ELEMENTS) -> ExperimentResult:
    """Regenerate Fig. 3's three curves and the measured points."""
    model = PerformanceModel(STRATIX10_GX2800, mode=ConstraintMode.MEASURED)
    spec = SYSTEM_CATALOG["Stratix GX 2800"]
    roof = Roofline(spec.peak_flops, spec.peak_bandwidth)

    result = ExperimentResult(
        exp_id="E-F3",
        title=f"Fig. 3 - model vs measurement across N ({num_elements} elements)",
        headers=["N", "roofline GF/s", "model@300MHz", "model@210MHz", "measured(sim)"],
    )
    xs, roofline_y, m300_y, m210_y = [], [], [], []
    meas_x, meas_y = [], []
    for n in FIG3_DEGREES:
        roofline = roof.attainable_for_degree(n) / 1e9
        p300 = model.peak_gflops(n, kernel_mhz=300.0)
        p210 = model.peak_gflops(n, kernel_mhz=210.0)
        measured = None
        if n in TABLE1_DEGREES:
            acc = SEMAccelerator(AcceleratorConfig.banked(n), STRATIX10_GX2800)
            measured = acc.performance(num_elements).gflops
            meas_x.append(float(n))
            meas_y.append(measured)
        xs.append(float(n))
        roofline_y.append(roofline)
        m300_y.append(p300)
        m210_y.append(p210)
        result.add_row(
            [
                n,
                round(roofline, 1),
                round(p300, 1),
                round(p210, 1),
                round(measured, 1) if measured is not None else None,
            ]
        )
    result.add_series(Series("roofline", tuple(xs), tuple(roofline_y), {"units": "GF/s"}))
    result.add_series(Series("model@300MHz", tuple(xs), tuple(m300_y), {"units": "GF/s"}))
    result.add_series(Series("model@210MHz", tuple(xs), tuple(m210_y), {"units": "GF/s"}))
    result.add_series(Series("measured", tuple(meas_x), tuple(meas_y), {"units": "GF/s"}))
    result.notes.append(
        "measured points fall inside the 210-300 MHz model band for the "
        "conflict-free degrees and on the T-constrained model for the "
        "rest, as in the paper."
    )
    return result


def main() -> str:
    """CLI entry: render the Fig.-3 regeneration."""
    return build_fig3().render()
