"""Experiment drivers regenerating every table and figure of the paper.

Run from the command line::

    python -m repro.experiments table1
    python -m repro.experiments all

or import the builders (``build_table1`` etc.) for programmatic access —
the benchmark harness and the test-suite both do.
"""

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.table1 import build_table1
from repro.experiments.table2 import build_table2
from repro.experiments.fig1 import build_fig1, crossover_summary
from repro.experiments.fig2 import build_fig2, FIG2_DEGREES
from repro.experiments.fig3 import build_fig3
from repro.experiments.ablations import (
    build_gxyz_split,
    build_journey,
    build_memory_layout,
    build_padding,
)
from repro.experiments.bandwidth import build_bandwidth_utilization, build_stream
from repro.experiments.export import export_all, export_result
from repro.experiments.pcie import build_pcie_study
from repro.experiments.whatif import (
    build_dsp_specialization,
    build_precision_whatif,
    build_sizing,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "build_table1",
    "build_table2",
    "build_fig1",
    "crossover_summary",
    "build_fig2",
    "FIG2_DEGREES",
    "build_fig3",
    "build_gxyz_split",
    "build_journey",
    "build_memory_layout",
    "build_padding",
    "build_bandwidth_utilization",
    "build_stream",
    "build_dsp_specialization",
    "build_precision_whatif",
    "build_sizing",
    "build_pcie_study",
    "export_all",
    "export_result",
]
