"""E-T1 — regenerate Table I: synthesis + performance per degree.

For each synthesized degree the driver runs the banked accelerator
simulator at the 4096-element reference, produces the synthesis report
(resources / clock / power) and the model prediction, and prints the
paper's columns side by side with the paper's reference values.
"""

from __future__ import annotations

from repro.core import ConstraintMode, PerformanceModel
from repro.core.accel import AcceleratorConfig, SEMAccelerator, synthesize
from repro.core.calibration import (
    REFERENCE_ELEMENTS,
    STRATIX10_TABLE1,
    TABLE1_DEGREES,
)
from repro.experiments.common import ExperimentResult
from repro.hardware.fpga import STRATIX10_GX2800


def build_table1(num_elements: int = REFERENCE_ELEMENTS) -> ExperimentResult:
    """Regenerate Table I on the simulated Stratix 10.

    Returns one row per degree with (simulated, paper) pairs for the
    headline columns.
    """
    model = PerformanceModel(STRATIX10_GX2800, mode=ConstraintMode.MEASURED)
    result = ExperimentResult(
        exp_id="E-T1",
        title=f"Table I - SEM-accelerator synthesis & performance "
        f"({num_elements} elements)",
        headers=[
            "N", "T", "fmax(MHz)", "logic%", "BRAM%", "DSP%", "power(W)",
            "GF/s", "GF/s(paper)", "GF/s/W", "GF/s/W(paper)",
            "DOF/cyc", "DOF/cyc(paper)", "err%", "err%(paper)",
        ],
    )
    for n in TABLE1_DEGREES:
        cfg = AcceleratorConfig.banked(n)
        acc = SEMAccelerator(cfg, STRATIX10_GX2800)
        rep = acc.performance(num_elements)
        syn = synthesize(cfg, STRATIX10_GX2800)
        ref = STRATIX10_TABLE1[n]
        err = model.model_error_pct(n, rep.dofs_per_cycle)
        eff = rep.gflops / syn.power_w
        result.add_row(
            [
                n,
                cfg.unroll,
                syn.fmax_mhz,
                round(syn.logic_pct, 1),
                round(syn.bram_pct, 1),
                round(syn.dsp_pct, 1),
                round(syn.power_w, 2),
                round(rep.gflops, 1),
                ref.gflops,
                round(eff, 2),
                ref.gflops_per_w,
                round(rep.dofs_per_cycle, 2),
                ref.dofs_per_cycle,
                round(err, 2),
                ref.model_error_pct,
            ]
        )
    result.notes.append(
        "fmax per degree is calibrated from the paper (place-and-route "
        "outcomes are not first-principles derivable); GF/s, DOF/cycle and "
        "err% are produced by the simulator + model."
    )
    result.notes.append(
        "paper cells marked approximate in repro.core.calibration "
        "(OCR-damaged Logic%/DSP% entries) are reconstructions."
    )
    result.notes.append(
        "DSP% is the linear resource model's output; at N=11/15 it "
        "overestimates the measured count because Quartus shares "
        "multipliers (the paper's empirical R_base absorbs this, see "
        "repro.core.resources.base_resources_from_measurement)."
    )
    return result


def main() -> str:
    """CLI entry: render the regenerated Table I."""
    return build_table1().render()
