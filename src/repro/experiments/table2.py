"""E-T2 — regenerate Table II: evaluated systems and derived metrics.

Pure catalog rendering plus the derived Byte/FLOP balance; the test-suite
checks the derived column against the paper's printed values.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hardware.catalog import CATALOG_ORDER, SYSTEM_CATALOG


def build_table2() -> ExperimentResult:
    """Regenerate Table II from the architecture catalog."""
    result = ExperimentResult(
        exp_id="E-T2",
        title="Table II - systems overview",
        headers=[
            "Type", "Architecture", "Tech(nm)", "Peak(GF/s)",
            "BW(GB/s)", "TDP(W)", "Byte/FLOP", "Freq(MHz)", "Release",
        ],
    )
    for name in CATALOG_ORDER:
        s = SYSTEM_CATALOG[name]
        peak = f"{s.peak_gflops:g}*" if s.peak_is_model_bound else f"{s.peak_gflops:g}"
        result.add_row(
            [
                s.arch_type.value,
                s.name,
                s.tech_nm,
                peak,
                s.mem_bw_gbs,
                s.tdp_w,
                round(s.byte_per_flop, 3),
                s.freq_mhz,
                s.release_year,
            ]
        )
    result.notes.append(
        "* FPGA peak is the paper's optimistic model bound at 400 MHz "
        "with empirically measured resource utilization."
    )
    return result


def main() -> str:
    """CLI entry: render the regenerated Table II."""
    return build_table2().render()
