"""E-X3 — what-if studies: precision and DSP specialization (§V-D coda).

Tabulates the two counterfactuals of :mod:`repro.core.whatif` on the
measured and projected devices, and the inverse-design answer of
:mod:`repro.core.sizing`.
"""

from __future__ import annotations

from repro.core.sizing import size_for_throughput
from repro.core.throughput import ConstraintMode
from repro.core.whatif import compare_precision, specialize_dsps
from repro.core.perfmodel import PerformanceModel
from repro.experiments.common import ExperimentResult
from repro.hardware.fpga import AGILEX_027, STRATIX10_GX2800, STRATIX10_M


def build_precision_whatif() -> ExperimentResult:
    """FP64 vs FP32 on the measured + projected devices."""
    result = ExperimentResult(
        exp_id="E-X3a",
        title="Precision what-if (footnote 6): FP32 counterfactual at 300 MHz",
        headers=["device", "N", "FP64 GF/s", "FP32 GF/s", "speedup",
                 "FP64 bound", "FP32 bound"],
    )
    for device in (STRATIX10_GX2800, AGILEX_027, STRATIX10_M):
        for n in (7, 11, 15):
            c = compare_precision(device, n, mode=ConstraintMode.PROJECTION)
            result.add_row(
                [
                    device.name, n,
                    round(c.gflops_fp64, 1), round(c.gflops_fp32, 1),
                    round(c.speedup, 2), c.binding_fp64, c.binding_fp32,
                ]
            )
    result.notes.append(
        "FP32 doubles the bandwidth-bound throughput (32 B/DOF) and "
        "slashes operator cost - but the paper's footnote 6 rules it out "
        "for long simulations (cumulative round-off)."
    )
    return result


def build_dsp_specialization() -> ExperimentResult:
    """Specialized-DSP counterfactual on the measured device."""
    result = ExperimentResult(
        exp_id="E-X3b",
        title="DSP specialization what-if (paper: 'specialize their DSP "
        "blocks to double-precision')",
        headers=["device", "N", "T_R stock", "T_R specialized", "binding after"],
    )
    for n in (7, 11, 15):
        stock = PerformanceModel(STRATIX10_GX2800, mode=ConstraintMode.PROJECTION)
        spec = PerformanceModel(
            specialize_dsps(STRATIX10_GX2800), mode=ConstraintMode.PROJECTION
        )
        result.add_row(
            [
                "Stratix 10 GX2800", n,
                round(stock.t_resource(n), 2),
                round(spec.t_resource(n), 2),
                spec.predict(n).binding,
            ]
        )
    result.notes.append(
        "on the bandwidth-starved GX2800 the binding constraint stays "
        "'bandwidth' - matching the paper's 'likely make the computation "
        "memory-bound, comparable to that of the GPUs'."
    )
    return result


def build_sizing() -> ExperimentResult:
    """Inverse design: resources per target throughput at N=15."""
    result = ExperimentResult(
        exp_id="E-X3c",
        title="Inverse design: device inventory per target throughput (N=15, 300 MHz)",
        headers=["T (DOF/cyc)", "GF/s", "ALMs (M)", "DSPs (k)", "BW (GB/s)", "BRAM blocks"],
    )
    for t in (4, 8, 16, 32, 64):
        req = size_for_throughput(15, t)
        result.add_row(
            [
                t,
                round(req.gflops, 0),
                round(req.resources.alms / 1e6, 2),
                round(req.resources.dsps / 1e3, 2),
                round(req.bandwidth_bytes_per_s / 1e9, 1),
                req.bram_blocks,
            ]
        )
    result.notes.append(
        "the T=64 row is the paper's hypothetical A100-beating device: "
        "~6.2M ALMs, ~20k DSPs, ~1.2 TB/s."
    )
    return result


def main() -> str:
    """CLI entry: render all three what-if artifacts."""
    return "\n\n".join(
        [
            build_precision_whatif().render(),
            build_dsp_specialization().render(),
            build_sizing().render(),
        ]
    )
