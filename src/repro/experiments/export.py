"""Export regenerated artifacts to CSV (plot-ready result files).

``python -m repro.experiments export <dir>`` writes one CSV per table
and one per figure series set — the files a downstream user would feed
to their plotting stack to redraw the paper's figures.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable

from repro.experiments.common import ExperimentResult

Builder = Callable[[], ExperimentResult]


def export_result(result: ExperimentResult, directory: Path) -> list[Path]:
    """Write one experiment's rows (and series, if any) as CSV files.

    Returns the created paths.  Row tables go to ``<exp_id>.csv``;
    series go to ``<exp_id>_series.csv`` in long format
    ``(series, x, y, meta...)``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    if result.rows:
        path = directory / f"{result.exp_id}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(result.headers)
            for row in result.rows:
                writer.writerow(["" if c is None else c for c in row])
        written.append(path)

    if result.series:
        path = directory / f"{result.exp_id}_series.csv"
        meta_keys = sorted({k for s in result.series for k in s.meta})
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["series", "x", "y", *meta_keys])
            for s in result.series:
                metas = [s.meta.get(k, "") for k in meta_keys]
                for x, y in zip(s.x, s.y):
                    writer.writerow([s.name, x, y, *metas])
        written.append(path)
    return written


def default_builders() -> dict[str, Builder]:
    """All experiment builders keyed by their artifact name."""
    from repro.experiments import (
        build_bandwidth_utilization,
        build_dsp_specialization,
        build_fig1,
        build_fig2,
        build_fig3,
        build_gxyz_split,
        build_journey,
        build_memory_layout,
        build_padding,
        build_pcie_study,
        build_precision_whatif,
        build_sizing,
        build_stream,
        build_table1,
        build_table2,
    )

    return {
        "table1": build_table1,
        "table2": build_table2,
        "fig1": build_fig1,
        "fig2": build_fig2,
        "fig3": build_fig3,
        "journey": build_journey,
        "padding": build_padding,
        "memory_layout": build_memory_layout,
        "gxyz_split": build_gxyz_split,
        "bandwidth_utilization": build_bandwidth_utilization,
        "stream": build_stream,
        "precision_whatif": build_precision_whatif,
        "dsp_specialization": build_dsp_specialization,
        "sizing": build_sizing,
        "pcie": build_pcie_study,
    }


def export_all(directory: Path | str) -> list[Path]:
    """Regenerate and export every artifact; returns written paths."""
    directory = Path(directory)
    written: list[Path] = []
    for builder in default_builders().values():
        written.extend(export_result(builder(), directory))
    return written
