"""Shared experiment infrastructure: result containers and rendering.

Every driver returns a structured result object (rows of plain dicts plus
named series) that renders to the same kind of table the paper prints.
Keeping results structured lets the test-suite assert on values instead
of scraping text, and lets benchmarks re-run generation deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.util.tables import TextTable


@dataclass(frozen=True)
class Series:
    """A named 1-D series (one curve of a figure).

    ``x`` and ``y`` have equal length; ``meta`` carries labels such as the
    architecture name or polynomial degree.
    """

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: len(x)={len(self.x)} != len(y)={len(self.y)}"
            )

    @property
    def y_max(self) -> float:
        """Largest y value (peak of the curve)."""
        return max(self.y)


@dataclass
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    exp_id:
        DESIGN.md experiment id (e.g. ``"E-T1"``).
    title:
        Human-readable caption.
    headers:
        Column names for the tabular part.
    rows:
        Table rows (sequences aligned with ``headers``).
    series:
        Optional curves (for figure experiments).
    notes:
        Free-form provenance / deviation notes printed under the table.
    """

    exp_id: str
    title: str
    headers: Sequence[str] = ()
    rows: list[Sequence[Any]] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, row: Iterable[Any]) -> None:
        """Append one table row."""
        self.rows.append(tuple(row))

    def add_series(self, series: Series) -> None:
        """Append one curve."""
        self.series.append(series)

    def render(self, floatfmt: str = ".4g") -> str:
        """Render to the text block the benchmark harness prints."""
        parts: list[str] = [f"== {self.exp_id}: {self.title} =="]
        if self.headers:
            table = TextTable(self.headers, floatfmt=floatfmt)
            for row in self.rows:
                table.add_row(row)
            parts.append(table.render())
        for s in self.series:
            label = ", ".join(f"{k}={v}" for k, v in s.meta.items())
            pts = "  ".join(f"({xi:g}, {yi:.4g})" for xi, yi in zip(s.x, s.y))
            parts.append(f"-- {s.name} [{label}]\n   {pts}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def row_dict(self, key_col: int = 0) -> dict[Any, Sequence[Any]]:
        """Index rows by one column (for tests)."""
        return {row[key_col]: row for row in self.rows}
