"""E-F2 / E-P1 — regenerate Fig. 2: peak comparison at 4096 elements.

Bars (GFLOP/s at N = 7 / 11 / 15) for the measured FPGA, the three CPUs
and five GPUs, plus the roofline line, the power-efficiency line, and the
three modeled future FPGAs of §V-D (Agilex 027, Stratix 10M, ideal), with
the 10M "8.7k DSP / 600 GB/s" variant as an extra row.
"""

from __future__ import annotations

from repro.core import (
    ConstraintMode,
    PerformanceModel,
    Roofline,
    zero_base_provider,
)
from repro.core.accel import AcceleratorConfig, SEMAccelerator, synthesize
from repro.core.calibration import REFERENCE_ELEMENTS
from repro.experiments.common import ExperimentResult
from repro.hardware.catalog import CATALOG_ORDER, SYSTEM_CATALOG
from repro.hardware.fpga import (
    AGILEX_027,
    IDEAL_FPGA,
    STRATIX10_GX2800,
    STRATIX10_M,
    STRATIX10_M_ENHANCED,
)
from repro.hardware.hostmodel import HostExecutionModel

#: The degrees Fig. 2 compares (chosen by the paper to avoid arbitration).
FIG2_DEGREES: tuple[int, ...] = (7, 11, 15)


def _fpga_rows(result: ExperimentResult, num_elements: int) -> None:
    spec = SYSTEM_CATALOG["Stratix GX 2800"]
    roof = Roofline(spec.peak_flops, spec.peak_bandwidth)
    for n in FIG2_DEGREES:
        cfg = AcceleratorConfig.banked(n)
        acc = SEMAccelerator(cfg, STRATIX10_GX2800)
        rep = acc.performance(num_elements)
        syn = synthesize(cfg, STRATIX10_GX2800)
        result.add_row(
            [
                "SEM-Acc (FPGA)",
                n,
                round(rep.gflops, 1),
                round(rep.gflops / syn.power_w, 2),
                round(roof.attainable_for_degree(n) / 1e9, 1),
                "measured(sim)",
            ]
        )


def _host_rows(result: ExperimentResult, num_elements: int) -> None:
    for name in CATALOG_ORDER:
        if name == "Stratix GX 2800":
            continue
        model = HostExecutionModel.for_system(name)
        for n in FIG2_DEGREES:
            s = model.sample(n, num_elements)
            result.add_row(
                [
                    name,
                    n,
                    round(s.gflops, 1),
                    round(s.gflops_per_w, 2),
                    round(model.roofline_gflops(n), 1),
                    "host model",
                ]
            )


def _projection_rows(result: ExperimentResult) -> None:
    projections = [
        (AGILEX_027, None),
        (STRATIX10_M, None),
        (STRATIX10_M_ENHANCED, None),
        (IDEAL_FPGA, zero_base_provider()),
    ]
    for device, base in projections:
        pm = PerformanceModel(device, base_provider=base, mode=ConstraintMode.PROJECTION)
        roof = Roofline(max(pm.peak_gflops(n) for n in FIG2_DEGREES) * 1e9 + 1.0,
                        device.peak_bandwidth)
        for n in FIG2_DEGREES:
            pred = pm.predict(n)
            result.add_row(
                [
                    device.name,
                    n,
                    round(pred.gflops, 1),
                    None,
                    round(roof.attainable_for_degree(n) / 1e9, 1),
                    f"projected ({pred.binding}-bound, T={pred.t_max:g})",
                ]
            )


def build_fig2(num_elements: int = REFERENCE_ELEMENTS) -> ExperimentResult:
    """Regenerate Fig. 2's bars, efficiency values and projections."""
    result = ExperimentResult(
        exp_id="E-F2",
        title=f"Fig. 2 - peak performance comparison at {num_elements} elements",
        headers=["system", "N", "GF/s", "GF/s/W", "roofline GF/s", "source"],
    )
    _fpga_rows(result, num_elements)
    _host_rows(result, num_elements)
    _projection_rows(result)
    result.notes.append(
        "paper projection anchors: Agilex (266, 191, 248); Stratix 10M "
        "peaks at 382 @ N=11; 10M variant (1.06, 1.53, 0.99) TF; ideal "
        "(2.1, 3, 3.97) TF."
    )
    result.notes.append(
        "host GF/s/W uses calibrated measured power "
        "(repro.hardware.calibration); Tesla efficiency ratios anchored "
        "at N=15 per the paper's quoted 2.69x/4.44x/4.52x."
    )
    return result


def main() -> str:
    """CLI entry: render the Fig.-2 regeneration."""
    return build_fig2().render()
