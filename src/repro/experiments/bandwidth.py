"""E-X1 — the paper's appendix: bandwidth utilization, FPGA vs GPUs.

"Overall though, compared to the GPUs, the utilized bandwidth on the
FPGA was higher as a percentage of theoretical bandwidth [40]; if this
continues to be the case for higher bandwidth speeds, this provides a
case in favor for future FPGAs in memory bound applications."

Also regenerates the STREAM-for-FPGA sweep ([42]) that explains the
small-size / small-degree model error.
"""

from __future__ import annotations

from repro.core.accel.stream import (
    stream_sweep,
    utilization_comparison,
)
from repro.experiments.common import ExperimentResult, Series
from repro.hardware.fpga import STRATIX10_GX2800


def build_bandwidth_utilization() -> ExperimentResult:
    """FPGA-vs-GPU achieved fraction of theoretical bandwidth."""
    result = ExperimentResult(
        exp_id="E-X1",
        title="Appendix - achieved fraction of theoretical bandwidth @4096",
        headers=["system", "N", "achieved GB/s", "peak GB/s", "fraction %"],
    )
    for u in utilization_comparison(degrees=(7, 11, 15)):
        result.add_row(
            [u.system, u.n, round(u.achieved_gbs, 1), u.peak_gbs,
             round(u.fraction * 100.0, 1)]
        )
    result.notes.append(
        "at N=15 (where the tuned GPU kernel degrades) the FPGA uses "
        "~85% of its DDR peak vs 35-47% on the Tesla parts - the paper's "
        "memory-bound case for future FPGAs."
    )
    return result


def build_stream() -> ExperimentResult:
    """STREAM-like effective-bandwidth sweep on the FPGA memory model."""
    result = ExperimentResult(
        exp_id="E-X2",
        title="STREAM-for-FPGA: effective bandwidth vs transfer size (N=7)",
        headers=["elements", "transfer MB", "effective GB/s", "% of peak"],
    )
    samples = stream_sweep(STRATIX10_GX2800, n=7)
    xs, ys = [], []
    for s in samples:
        result.add_row(
            [
                s.num_elements,
                round(s.transfer_bytes / 1e6, 2),
                round(s.effective_gbs, 1),
                round(s.fraction_of_peak * 100.0, 1),
            ]
        )
        xs.append(float(s.num_elements))
        ys.append(s.effective_gbs)
    result.add_series(Series("B_eff(N=7)", tuple(xs), tuple(ys), {"units": "GB/s"}))
    result.notes.append(
        "the input-size dependence here is exactly the mechanism the "
        "paper blames for the 18-28% model error at small degrees."
    )
    return result


def main() -> str:
    """CLI entry: render both appendix artifacts."""
    return "\n\n".join(
        [build_bandwidth_utilization().render(), build_stream().render()]
    )
