"""E-A1/E-A2/E-A3 — ablations of the paper's §III design choices.

* **E-A1 optimization journey** — baseline -> local/ILP -> II=1 ->
  banked, the paper's 0.025 -> ~10 -> ~60 -> 109 GFLOP/s narrative.
* **E-A2 padding** — §III-E/§IV: padding each degree to the next unroll-
  friendly size, showing the net gain is < 1 for most degrees.
* **E-A3 memory layout** — interleaved vs banked external memory across
  degrees.
* **E-A4 gxyz split** — keeping the geometric factors as one array
  (arbitration) vs six split vectors.
"""

from __future__ import annotations

from repro.core.accel import AcceleratorConfig, SEMAccelerator
from repro.core.calibration import REFERENCE_ELEMENTS, TABLE1_DEGREES
from repro.core.padding import padding_gain
from repro.experiments.common import ExperimentResult
from repro.hardware.fpga import STRATIX10_GX2800

#: Paper milestones of the §III journey at N=7 (GFLOP/s).
JOURNEY_PAPER_GFLOPS: tuple[float, ...] = (0.025, 10.0, 60.0, 109.0)


def build_journey(n: int = 7, num_elements: int = REFERENCE_ELEMENTS) -> ExperimentResult:
    """E-A1: the four §III design points."""
    result = ExperimentResult(
        exp_id="E-A1",
        title=f"Optimization journey (N={n}, {num_elements} elements)",
        headers=["design point", "GF/s", "paper GF/s", "II", "stall", "layout"],
    )
    labels = ("baseline", "+BRAM locality & ILP", "+#pragma ii 1", "+banked memory")
    for cfg, label, paper in zip(
        AcceleratorConfig.journey(n), labels, JOURNEY_PAPER_GFLOPS
    ):
        acc = SEMAccelerator(cfg, STRATIX10_GX2800)
        rep = acc.performance(num_elements)
        ii = rep.datapath.ii if rep.datapath else "-"
        stall = rep.datapath.stall_factor if rep.datapath else "-"
        result.add_row(
            [
                label,
                round(rep.gflops, 3),
                paper,
                ii,
                stall,
                rep.memory.layout if rep.memory else "none",
            ]
        )
    return result


def build_padding(target_t: int = 4) -> ExperimentResult:
    """E-A2: padding gain per degree targeting unroll ``target_t``.

    Defaults to ``T = 4`` — the Stratix 10's bandwidth-constrained lane
    count, which is the unroll the paper's padding discussion is about.
    """
    result = ExperimentResult(
        exp_id="E-A2",
        title=f"Padding analysis targeting T={target_t} (paper §III-E / §IV)",
        headers=["N", "T native", "T padded", "pad", "work x", "net gain", "worth it"],
    )
    for n in range(1, 16):
        plan = padding_gain(n, target_t)
        result.add_row(
            [
                n,
                plan.t_native,
                plan.t_padded,
                plan.pad,
                round(plan.work_factor, 3),
                round(plan.gain, 3),
                plan.gain > 1.0,
            ]
        )
    result.notes.append(
        "the paper concludes padding hurts for most (small) degrees and "
        "does not use it; the marginal gains at N=9/13 match its 'for the "
        "even GLL counts we focus on, the benefits are negligible'."
    )
    return result


def build_memory_layout(num_elements: int = REFERENCE_ELEMENTS) -> ExperimentResult:
    """E-A3: banked vs interleaved external memory across degrees."""
    result = ExperimentResult(
        exp_id="E-A3",
        title=f"External memory layout ({num_elements} elements)",
        headers=["N", "banked GF/s", "interleaved GF/s", "speedup"],
    )
    for n in TABLE1_DEGREES:
        banked = SEMAccelerator(
            AcceleratorConfig.banked(n), STRATIX10_GX2800
        ).performance(num_elements)
        inter = SEMAccelerator(
            AcceleratorConfig.ii1(n), STRATIX10_GX2800
        ).performance(num_elements)
        result.add_row(
            [
                n,
                round(banked.gflops, 1),
                round(inter.gflops, 1),
                round(banked.gflops / inter.gflops, 2),
            ]
        )
    return result


def build_gxyz_split(n: int = 7, num_elements: int = REFERENCE_ELEMENTS) -> ExperimentResult:
    """E-A4: splitting gxyz into six vectors vs one interleaved array."""
    from dataclasses import replace

    result = ExperimentResult(
        exp_id="E-A4",
        title=f"gxyz split ablation (N={n}, {num_elements} elements)",
        headers=["variant", "GF/s", "stall factor"],
    )
    for label, split in (("six split vectors", True), ("single gxyz array", False)):
        cfg = replace(AcceleratorConfig.banked(n), split_gxyz=split)
        rep = SEMAccelerator(cfg, STRATIX10_GX2800).performance(num_elements)
        stall = rep.datapath.stall_factor if rep.datapath else 1.0
        result.add_row([label, round(rep.gflops, 2), stall])
    result.notes.append(
        "the paper: un-split gxyz caused producer/consumer arbitration "
        "and pipeline stalls until split into six vectors (§III-B)."
    )
    return result


def main() -> str:
    """CLI entry: render all ablations."""
    parts = [
        build_journey().render(),
        build_padding().render(),
        build_memory_layout().render(),
        build_gxyz_split().render(),
    ]
    return "\n\n".join(parts)
