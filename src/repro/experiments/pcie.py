"""E-X4 — why the paper excludes PCIe: transfer-inclusive performance.

"All experiments are executed to exclude PCIe transfer overheads,
focusing exclusively on the isolated performance of the kernel."  This
driver quantifies what that exclusion hides: the kernel-only vs
PCIe-inclusive GFLOP/s of the FPGA accelerator across problem sizes, in
the cold (all inputs staged) and steady-state (geometric factors
resident) regimes.
"""

from __future__ import annotations

from repro.core.accel import AcceleratorConfig, SEMAccelerator
from repro.core.accel.host import PCIeLink, pcie_overhead_fraction
from repro.experiments.common import ExperimentResult
from repro.hardware.fpga import STRATIX10_GX2800

SIZES: tuple[int, ...] = (16, 128, 1024, 4096, 16384)


def build_pcie_study(n: int = 7) -> ExperimentResult:
    """Kernel-only vs PCIe-inclusive GFLOP/s over problem sizes."""
    result = ExperimentResult(
        exp_id="E-X4",
        title=f"PCIe exclusion study (N={n}, Gen3 x8)",
        headers=[
            "elements", "kernel GF/s", "+PCIe (resident g) GF/s",
            "+PCIe (cold) GF/s", "PCIe share (resident)", "PCIe share (cold)",
        ],
    )
    link = PCIeLink()
    for e in SIZES:
        acc = SEMAccelerator(AcceleratorConfig.banked(n), STRATIX10_GX2800)
        rep = acc.performance(e)
        frac_res = pcie_overhead_fraction(
            n, e, STRATIX10_GX2800, link, resident_factors=True
        )
        frac_cold = pcie_overhead_fraction(
            n, e, STRATIX10_GX2800, link, resident_factors=False
        )
        result.add_row(
            [
                e,
                round(rep.gflops, 1),
                round(rep.gflops * (1 - frac_res), 1),
                round(rep.gflops * (1 - frac_cold), 1),
                f"{frac_res * 100:.0f}%",
                f"{frac_cold * 100:.0f}%",
            ]
        )
    result.notes.append(
        "cold staging (u + six factors per call) would cost the majority "
        "of the runtime at every size - the reason the paper reports "
        "kernel-isolated numbers, and why a production integration keeps "
        "the geometry resident on the device."
    )
    return result


def main() -> str:
    """CLI entry: render the PCIe study."""
    return build_pcie_study().render()
