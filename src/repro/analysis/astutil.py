"""Small AST helpers shared by the lint rules (stdlib ``ast`` only)."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """Resolve a ``Name``/``Attribute`` chain to ``"a.b.c"``.

    Returns ``None`` for anything that is not a pure dotted chain
    (calls, subscripts, literals) — rules treat those as unresolvable
    rather than guessing.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee (``None`` if unresolvable)."""
    return dotted_name(node.func)


def name_matches(dotted: str | None, suffix: str) -> bool:
    """Does ``dotted`` equal ``suffix`` or end with ``"." + suffix``?

    The standard way rules match qualified calls without resolving
    imports: ``time.time`` matches both ``time.time()`` and an aliased
    ``t.time()`` never, but does match ``datetime.datetime.now`` for
    suffix ``datetime.now``.
    """
    if dotted is None:
        return False
    return dotted == suffix or dotted.endswith("." + suffix)


def is_self_attribute(node: ast.AST, attr: str | None = None) -> bool:
    """Is ``node`` an ``self.<attr>`` attribute access?"""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def functions_in(tree: ast.AST) -> "Iterator[ast.FunctionDef | ast.AsyncFunctionDef]":
    """Every function definition in ``tree`` (nested ones included)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def qualname_map(tree: ast.Module) -> dict[ast.AST, str]:
    """Map every class/function definition node to its dotted qualname.

    Nested definitions join with ``"."`` (no ``<locals>`` noise —
    findings should read like code, not like ``__qualname__``).
    """
    names: dict[ast.AST, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                names[child] = qual
                visit(child, qual)
            else:
                visit(child, prefix)

    visit(tree, "")
    return names


def enclosing_symbol(
    tree: ast.Module, node: ast.AST
) -> str:
    """Dotted qualname of the innermost definition containing ``node``
    (``"<module>"`` for top-level code)."""
    best: tuple[int, str] | None = None
    target_line = getattr(node, "lineno", 0)
    target_end = getattr(node, "end_lineno", target_line)
    for defn, qual in qualname_map(tree).items():
        if defn.lineno <= target_line and target_end <= (
            defn.end_lineno or defn.lineno
        ):
            span = (defn.end_lineno or defn.lineno) - defn.lineno
            if best is None or span < best[0]:
                best = (span, qual)
    return best[1] if best else "<module>"


def function_args(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> list[str]:
    """All parameter names of a function, in declaration order."""
    a = node.args
    names = [arg.arg for arg in a.posonlyargs + a.args + a.kwonlyargs]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return names
