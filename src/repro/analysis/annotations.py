"""The annotation vocabulary shared by the lint rules and the runtime.

Production modules import only this file (and
:mod:`repro.analysis.runtime`) from the analysis package — both are
stdlib-only and numpy-free, so the SEM/serving layers pay nothing for
being annotated.

Source-level annotations (consumed by the static rules)
-------------------------------------------------------
``# guarded-by: <lock>``
    Trailing comment on the line that *defines* an attribute (a
    ``self._x = ...`` assignment in ``__init__`` or a dataclass field
    line).  Declares that every read/write of the attribute in the
    class's methods must happen inside a ``with self.<lock>`` block.
``_GUARDED_BY = {"_attr": "_lock", ...}``
    Class-body registry form of the same declaration — the one the
    runtime race checker also consumes, so a class annotated this way
    gets both the static rule and (under ``REPRO_RACECHECK=1``) the
    runtime assertion from a single source of truth.
``# requires-lock: <lock>``
    Trailing comment on a ``def`` line: the method is a helper whose
    *callers* hold ``self.<lock>`` (e.g. ``TokenBucket._refill``).
    Guarded accesses inside it are treated as locked; the runtime
    checker still verifies the claim on every call.
``# lint: ignore[rule-id]`` / ``# lint: ignore[rule-id] -- reason``
    Suppress one rule on the annotated line (on a ``def``/``class``
    line: on the whole definition).  Prefer a reason; bare ignores
    read as debt.
``# lint: file-ignore[rule-id]``
    Suppress one rule for the whole file (first 5 lines only).

Runtime markers
---------------
:func:`hot_path`
    No-op decorator marking a function as allocation-free hot path;
    the ``hot-path-alloc`` rule checks every marked function (and any
    function listed in :class:`repro.analysis.config.AnalysisConfig.
    hot_path_functions`).
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

#: Class-body registry attribute both the static lock-discipline rule
#: and the runtime race checker read: ``{attr_name: lock_attr_name}``.
GUARDED_BY_REGISTRY = "_GUARDED_BY"

#: Optional class-body tuple naming extra lock attributes the runtime
#: sanitizer should wrap with order/ownership tracking even though no
#: guarded attribute maps to them (e.g. an outer lease lock).
TRACKED_LOCKS_REGISTRY = "_TRACKED_LOCKS"


def hot_path(fn: F) -> F:
    """Mark ``fn`` as solver hot path: allocation-free by contract.

    Purely a marker — the function is returned unchanged (one attribute
    write at definition time, nothing per call).  The static
    ``hot-path-alloc`` rule flags allocating numpy constructor calls,
    ``out=``-less array-function calls, and ``@``-products inside any
    function carrying this decorator.

    Setup code that legitimately allocates (cold-start workspace
    builds) belongs *outside* the marked function; the rare justified
    exception takes a ``# lint: ignore[hot-path-alloc] -- reason``.
    """
    fn.__hot_path__ = True
    return fn
