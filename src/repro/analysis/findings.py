"""Findings, the parsed-source model, and suppression comments.

A :class:`SourceFile` is what every rule sees: the parsed AST plus the
comment map rules need for the annotation vocabulary (trailing
``# guarded-by:`` declarations, ``# lint: ignore[...]`` suppressions).
Comments are recovered with :mod:`tokenize` so the model never guesses
at string contents.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

#: ``# lint: ignore[rule]`` / ``# lint: file-ignore[rule]`` (optionally
#: ``-- reason``); several rules may be listed comma-separated.
_IGNORE_RE = re.compile(
    r"#\s*lint:\s*(file-)?ignore\[([A-Za-z0-9_,\- ]+)\]"
)
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_REQUIRES_RE = re.compile(r"#\s*requires-lock:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Only the first few lines may carry file-wide ignores, so a file's
#: exemptions are visible at its head, not buried mid-module.
_FILE_IGNORE_HEAD_LINES = 5


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        The rule identifier (``"lock-discipline"``, ...).
    path:
        POSIX-style path of the offending file, relative to the
        analysis root (so findings and baseline entries compare
        machine-independently).
    line:
        1-based line of the offending node.
    symbol:
        Dotted qualname of the enclosing definition (``Class.method``,
        module-level code reports ``"<module>"``) — the stable half of
        a finding's identity: baselines match on ``(rule, path,
        symbol)`` so entries survive unrelated line drift.
    message:
        Human-readable description of the violation.
    """

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    def render(self) -> str:
        """``path:line: [rule] message (in symbol)`` — one CLI line."""
        return (
            f"{self.path}:{self.line}: [{self.rule}] {self.message}"
            f" (in {self.symbol})"
        )


@dataclass
class SourceFile:
    """One parsed source file plus its comment-derived annotations.

    Attributes
    ----------
    path:
        Root-relative POSIX path (what findings report).
    text:
        Raw source text.
    tree:
        Parsed :class:`ast.Module`.
    comments:
        ``{line: comment_text}`` for every comment token.
    line_ignores:
        ``{line: {rule, ...}}`` from ``# lint: ignore[...]`` comments.
    file_ignores:
        Rules suppressed for the whole file.
    guarded_by_lines:
        ``{line: lock_name}`` from ``# guarded-by:`` comments.
    requires_lock_lines:
        ``{line: lock_name}`` from ``# requires-lock:`` comments.
    """

    path: str
    text: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)
    line_ignores: dict[int, set[str]] = field(default_factory=dict)
    file_ignores: set[str] = field(default_factory=set)
    guarded_by_lines: dict[int, str] = field(default_factory=dict)
    requires_lock_lines: dict[int, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        """Parse ``text`` into the model every rule consumes.

        Raises
        ------
        SyntaxError
            If the file does not parse — callers surface that as its
            own finding rather than skipping the file silently.
        """
        tree = ast.parse(text, filename=path)
        src = cls(path=path, text=text, tree=tree)
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type != tokenize.COMMENT:
                continue
            line = tok.start[0]
            src.comments[line] = tok.string
            for match in _IGNORE_RE.finditer(tok.string):
                rules = {
                    r.strip() for r in match.group(2).split(",") if r.strip()
                }
                if match.group(1):  # file-ignore
                    if line <= _FILE_IGNORE_HEAD_LINES:
                        src.file_ignores |= rules
                else:
                    src.line_ignores.setdefault(line, set()).update(rules)
            guarded = _GUARDED_RE.search(tok.string)
            if guarded:
                src.guarded_by_lines[line] = guarded.group(1)
            requires = _REQUIRES_RE.search(tok.string)
            if requires:
                src.requires_lock_lines[line] = requires.group(1)
        return src

    # ------------------------------------------------------------------
    def ignored(self, rule: str, line: int) -> bool:
        """Is ``rule`` suppressed at ``line`` (or file-wide)?"""
        if rule in self.file_ignores:
            return True
        return rule in self.line_ignores.get(line, ())

    def definition_ignored(self, rule: str, node: ast.AST) -> bool:
        """Is ``rule`` suppressed on a definition's ``def``/``class``
        header (decorator lines included, so the ignore can sit above
        the signature)?"""
        start = min(
            [node.lineno]
            + [d.lineno for d in getattr(node, "decorator_list", [])]
        )
        body = getattr(node, "body", None)
        end = body[0].lineno if body else node.lineno
        return any(
            self.ignored(rule, line) for line in range(start, end + 1)
        )
