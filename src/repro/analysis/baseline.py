"""Baseline suppressions: accepted findings, each with a justification.

The baseline (``analysis/baseline.toml``) is the list of findings the
project has looked at and decided to keep — every entry carries a
mandatory ``justification`` so "why is this allowed?" is answered in
the file itself, not in git archaeology.  Entries match findings on
``(rule, path, symbol)`` — deliberately *not* on line number, so an
unrelated edit above the finding doesn't churn the baseline.

Format::

    [[suppression]]
    rule = "lock-discipline"
    path = "src/repro/serve/scheduler.py"
    symbol = "MicroBatcher.__len__"
    justification = "single-word read of list length; atomic under the GIL"

A stale entry (matching no current finding) fails ``--check``: dead
suppressions hide real regressions behind an always-green mask.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding


class BaselineError(ValueError):
    """The baseline file is malformed (missing keys, no justification)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: identity triple plus its justification."""

    rule: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


@dataclass
class Baseline:
    """The loaded suppression set."""

    entries: tuple[BaselineEntry, ...] = ()
    source: str = "<empty>"

    @classmethod
    def load(cls, path: "Path | str") -> "Baseline":
        """Load and validate ``path`` (missing file → empty baseline)."""
        path = Path(path)
        if not path.exists():
            return cls(entries=(), source=str(path))
        data = tomllib.loads(path.read_text(encoding="utf-8"))
        entries = []
        for i, raw in enumerate(data.get("suppression", [])):
            missing = [
                k
                for k in ("rule", "path", "symbol", "justification")
                if not isinstance(raw.get(k), str) or not raw[k].strip()
            ]
            if missing:
                raise BaselineError(
                    f"{path}: suppression #{i + 1} missing or empty "
                    f"{', '.join(missing)} (every entry needs rule, "
                    "path, symbol and a non-empty justification)"
                )
            entries.append(BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                symbol=raw["symbol"],
                justification=raw["justification"],
            ))
        keys = [e.key for e in entries]
        dupes = {k for k in keys if keys.count(k) > 1}
        if dupes:
            raise BaselineError(
                f"{path}: duplicate suppression entries: "
                + ", ".join("/".join(k) for k in sorted(dupes))
            )
        return cls(entries=tuple(entries), source=str(path))

    def split(
        self, findings: "list[Finding]"
    ) -> "tuple[list[Finding], list[BaselineEntry], list[BaselineEntry]]":
        """Partition against current findings.

        Returns ``(new, used, stale)``: findings not covered by any
        entry, entries that matched at least one finding, and entries
        that matched nothing (stale — must be deleted).
        """
        by_key: dict[tuple[str, str, str], BaselineEntry] = {
            e.key: e for e in self.entries
        }
        used_keys: set[tuple[str, str, str]] = set()
        new: list[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.path, finding.symbol)
            if key in by_key:
                used_keys.add(key)
            else:
                new.append(finding)
        used = [e for e in self.entries if e.key in used_keys]
        stale = [e for e in self.entries if e.key not in used_keys]
        return new, used, stale
