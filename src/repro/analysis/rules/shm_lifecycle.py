"""Shared-memory lifecycle: every created segment has a reachable release.

``multiprocessing.shared_memory.SharedMemory(create=True)`` allocates a
kernel object that outlives the process on leak (``/dev/shm`` fills up
across fleet restarts — the failure mode PR 9's cancelled-but-staged
ring-slot leak rehearsed).  The rule demands that the *enclosing
function* of every ``create=True`` call contain a visible release path:

* a ``try`` whose ``finally`` or ``except`` handlers call ``.close()``
  / ``.unlink()`` or one of the project teardown helpers
  (``unlink_shared_block`` / ``_untrack``), or
* a ``weakref.finalize(...)`` registration (teardown tied to object
  lifetime rather than scope).

The check is deliberately shallow — it wants the release *visible in
the same function*, because a cleanup that lives three calls away is
exactly the kind that a refactor silently severs.  Ownership handoffs
(function creates, returns, caller releases) take a per-line
``# lint: ignore[shm-lifecycle] -- reason`` naming the owner.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, enclosing_symbol, name_matches
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, SourceFile

RULE_ID = "shm-lifecycle"
RULE_IDS = (RULE_ID,)

#: Method names that release a shared-memory segment.
_RELEASE_ATTRS = ("close", "unlink")
#: Project helpers that encapsulate the close+unlink pair.
_RELEASE_HELPERS = ("unlink_shared_block", "_untrack")


def _is_shm_create(node: ast.Call) -> bool:
    if not name_matches(call_name(node), "SharedMemory"):
        return False
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in node.keywords
    )


def _is_release_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Attribute) and node.func.attr in _RELEASE_ATTRS:
        return True
    dotted = call_name(node)
    return any(name_matches(dotted, helper) for helper in _RELEASE_HELPERS)


def _has_release_path(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            cleanup_nodes: list[ast.AST] = list(node.finalbody)
            for handler in node.handlers:
                cleanup_nodes.extend(handler.body)
            for stmt in cleanup_nodes:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) and _is_release_call(sub):
                        return True
        elif isinstance(node, ast.Call) and name_matches(
            call_name(node), "weakref.finalize"
        ):
            return True
        elif isinstance(node, ast.Call) and name_matches(
            call_name(node), "finalize"
        ):
            return True
    return False


def check(src: SourceFile, config: AnalysisConfig) -> Iterator[Finding]:
    """Yield ``SharedMemory(create=True)`` calls with no visible release."""
    # Map each create call to its innermost enclosing function (module
    # level creates are always flagged: there is no scope to clean up in).
    funcs = [
        node
        for node in ast.walk(src.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for node in ast.walk(src.tree):
        if not (isinstance(node, ast.Call) and _is_shm_create(node)):
            continue
        enclosing = None
        for func in funcs:
            if func.lineno <= node.lineno <= (func.end_lineno or func.lineno):
                if enclosing is None or (
                    func.lineno >= enclosing.lineno
                    and (func.end_lineno or 0) <= (enclosing.end_lineno or 0)
                ):
                    enclosing = func
        if enclosing is not None and src.definition_ignored(RULE_ID, enclosing):
            continue
        if enclosing is not None and _has_release_path(enclosing):
            continue
        yield Finding(
            rule=RULE_ID,
            path=src.path,
            line=node.lineno,
            symbol=enclosing_symbol(src.tree, node),
            message=(
                "SharedMemory(create=True) without a visible release "
                "path (try/finally or except calling close/unlink, a "
                "teardown helper, or weakref.finalize) in the same "
                "function — leaked segments persist in /dev/shm"
            ),
        )
