"""Contiguity guards on ``out=`` parameters.

Numpy silently *copies* when an ``out=`` destination is non-contiguous
in some code paths (and raises in others) — PR 3's gather/scatter bug:
a transposed view passed as ``out=`` produced a silent copy, the
caller's buffer never saw the result, and the solve "converged" on
stale data.

Any function that takes a parameter named ``out`` and *risks* it —
reshapes it or forwards it as an ``out=`` keyword into a numpy call —
must visibly guard contiguity first: touch ``out.flags``
(``c_contiguous`` checks), call ``np.ascontiguousarray(out)``, or pass
``out`` through one of the configured helper validators.  Functions
that only index-assign into ``out`` (``out[...] = x``) are exempt:
plain ``__setitem__`` never silently copies.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, qualname_map
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, SourceFile

RULE_ID = "out-contiguity"
RULE_IDS = (RULE_ID,)

_PARAM = "out"
_RISKY_METHODS = ("reshape", "ravel", "view")


def _takes_out(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    a = func.args
    return any(
        arg.arg == _PARAM for arg in a.posonlyargs + a.args + a.kwonlyargs
    )


def _is_out_name(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == _PARAM


def _risky_use(func: ast.AST) -> ast.AST | None:
    """First node that risks ``out``'s contiguity, or ``None``."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RISKY_METHODS
            and _is_out_name(node.func.value)
        ):
            return node
        if isinstance(node, ast.Call) and any(
            kw.arg == _PARAM and _is_out_name(kw.value)
            for kw in node.keywords
        ):
            return node
    return None


def _guarded(func: ast.AST, config: AnalysisConfig) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "flags"
            and _is_out_name(node.value)
        ):
            return True
        if isinstance(node, ast.Call):
            dotted = call_name(node)
            if dotted is None:
                continue
            helpers = ("ascontiguousarray",) + tuple(
                config.contiguity_helpers
            )
            if any(
                dotted == h or dotted.endswith("." + h) for h in helpers
            ) and any(_is_out_name(arg) for arg in node.args):
                return True
    return False


def check(src: SourceFile, config: AnalysisConfig) -> Iterator[Finding]:
    """Yield functions that risk an unguarded ``out=`` parameter."""
    for func, qual in qualname_map(src.tree).items():
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _takes_out(func):
            continue
        if src.definition_ignored(RULE_ID, func):
            continue
        risky = _risky_use(func)
        if risky is None or _guarded(func, config):
            continue
        yield Finding(
            rule=RULE_ID,
            path=src.path,
            line=risky.lineno,
            symbol=qual,
            message=(
                "`out` parameter is reshaped/forwarded as out= without "
                "a contiguity guard (check out.flags.c_contiguous or "
                "validate first); non-contiguous out= can silently "
                "write to a copy"
            ),
        )
