"""Lock discipline: guarded attributes are touched only under their lock.

The rule the ``WorkspacePool._leased`` bug paid for (PR 5: ``sizes``/
``nbytes`` iterated the lease registry without the lock, racing a
first-time lease into ``RuntimeError: dictionary changed size during
iteration``): an attribute declared guarded — via a trailing
``# guarded-by: _lock`` comment on its defining line, or a class-body
``_GUARDED_BY = {"_attr": "_lock"}`` registry — may only be read or
written inside a ``with self._lock`` block in that class's methods.

Scope and escape hatches:

* ``__init__`` / ``__post_init__`` / ``__del__`` are exempt
  (single-threaded construction and teardown);
* a method whose ``def`` line carries ``# requires-lock: _lock`` is
  treated as holding that lock (its callers must hold it; the runtime
  race checker verifies the claim under ``REPRO_RACECHECK=1``);
* deliberate lock-free reads (an atomic snapshot of one word) take a
  per-line ``# lint: ignore[lock-discipline] -- reason``.

The check is lexical: an access inside a closure defined under the
``with`` counts as guarded even though the closure could escape — the
runtime checker covers that gap.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.annotations import GUARDED_BY_REGISTRY
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, SourceFile

RULE_ID = "lock-discipline"
RULE_IDS = (RULE_ID,)

#: Methods that run before/after any concurrent access can exist.
_EXEMPT_METHODS = ("__init__", "__post_init__", "__del__")


def _registry_entries(classdef: ast.ClassDef) -> dict[str, str]:
    """``_GUARDED_BY = {...}`` entries from the class body (if any)."""
    guarded: dict[str, str] = {}
    for stmt in classdef.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == GUARDED_BY_REGISTRY
            for t in stmt.targets
        ):
            continue
        if isinstance(stmt.value, ast.Dict):
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    guarded[key.value] = value.value
    return guarded


def _comment_entries(
    src: SourceFile, classdef: ast.ClassDef
) -> dict[str, str]:
    """``# guarded-by: _lock`` declarations inside the class body.

    The comment annotates the line(s) of an attribute's defining
    statement: a class-level (dataclass field) ``AnnAssign``/``Assign``
    or a ``self._attr = ...`` assignment in any method.
    """
    guarded: dict[str, str] = {}
    for node in ast.walk(classdef):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        lock = None
        for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
            lock = src.guarded_by_lines.get(line)
            if lock is not None:
                break
        if lock is None:
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):  # dataclass field line
                guarded[target.id] = lock
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guarded[target.attr] = lock
    return guarded


def _requires_lock(
    src: SourceFile, method: "ast.FunctionDef | ast.AsyncFunctionDef"
) -> str | None:
    """Lock named by a ``# requires-lock:`` comment on the signature."""
    body_start = method.body[0].lineno if method.body else method.lineno
    for line in range(method.lineno, body_start + 1):
        lock = src.requires_lock_lines.get(line)
        if lock is not None:
            return lock
    return None


class _MethodChecker(ast.NodeVisitor):
    """Walk one method tracking which ``self.<lock>`` locks are held."""

    def __init__(
        self,
        src: SourceFile,
        class_name: str,
        method_name: str,
        guarded: dict[str, str],
        held: set[str],
    ) -> None:
        self.src = src
        self.class_name = class_name
        self.method_name = method_name
        self.guarded = guarded
        self.held = held
        self.findings: list[Finding] = []
        self._reported: set[tuple[str, int]] = set()

    # -- lock scopes ---------------------------------------------------
    def _with_locks(self, node: "ast.With | ast.AsyncWith") -> set[str]:
        locks = set()
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                locks.add(expr.attr)
        return locks

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        added = self._with_locks(node) - self.held
        self.held |= added
        self.generic_visit(node)
        self.held -= added

    # -- guarded accesses ----------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.guarded
            and self.guarded[node.attr] not in self.held
        ):
            key = (node.attr, node.lineno)
            if key not in self._reported:
                self._reported.add(key)
                self.findings.append(Finding(
                    rule=RULE_ID,
                    path=self.src.path,
                    line=node.lineno,
                    symbol=f"{self.class_name}.{self.method_name}",
                    message=(
                        f"self.{node.attr} is guarded by "
                        f"self.{self.guarded[node.attr]} but accessed "
                        f"outside a `with self."
                        f"{self.guarded[node.attr]}` block"
                    ),
                ))
        self.generic_visit(node)


def check(src: SourceFile, config: AnalysisConfig) -> Iterator[Finding]:
    """Yield every unguarded access of a declared-guarded attribute."""
    for classdef in ast.walk(src.tree):
        if not isinstance(classdef, ast.ClassDef):
            continue
        guarded = _registry_entries(classdef)
        guarded.update(_comment_entries(src, classdef))
        if not guarded:
            continue
        for method in classdef.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if method.name in _EXEMPT_METHODS:
                continue
            if src.definition_ignored(RULE_ID, method):
                continue
            held = set()
            required = _requires_lock(src, method)
            if required is not None:
                held.add(required)
            checker = _MethodChecker(
                src, classdef.name, method.name, guarded, held
            )
            checker.visit(method)
            yield from checker.findings
