"""Hot-path allocation gate: preallocate outside, compute into buffers.

The CG inner loop's contract since PR 1: per-iteration work allocates
nothing — every operand writes into a workspace buffer via ``out=``.
A single stray ``np.zeros`` in ``apply_into`` costs an allocation per
CG iteration per RHS and shows up directly in p95 latency.

A function opts in by carrying the :func:`repro.analysis.annotations.
hot_path` decorator, or by being listed in ``AnalysisConfig.
hot_path_functions`` as ``"path/to/file.py::Qual.name"`` (for code that
must stay import-free of the analysis package).  Inside, the rule
flags:

* allocating numpy constructors (``np.empty``/``zeros``/``concatenate``
  /...: the :attr:`~repro.analysis.config.AnalysisConfig.
  allocating_constructors` list);
* out-capable numpy calls *without* ``out=`` (``np.multiply(a, b)``
  allocates; ``np.multiply(a, b, out=buf)`` does not) — including
  ufunc method forms ``.reduce``/``.accumulate``/``.reduceat``/
  ``.outer``;
* allocating array methods ``.copy()`` / ``.astype()`` /
  ``.flatten()`` / ``.tolist()``;
* the ``@`` matmul operator (always allocates; use
  ``np.matmul(..., out=)``).

Scalar arithmetic (``alpha = rz_new / rz``) is untouched — only calls
and ``@`` are inspected, so the rule stays quiet on the solver's
scalar recurrences.  Deliberate allocations (setup code inside a
marked function) take ``# lint: ignore[hot-path-alloc] -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, name_matches, qualname_map
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, SourceFile

RULE_ID = "hot-path-alloc"
RULE_IDS = (RULE_ID,)

_ALLOCATING_METHODS = ("copy", "astype", "flatten", "tolist")
_UFUNC_METHODS = ("reduce", "accumulate", "reduceat", "outer")


def _is_hot(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
    qual: str,
    src: SourceFile,
    config: AnalysisConfig,
) -> bool:
    for deco in func.decorator_list:
        name = None
        if isinstance(deco, (ast.Name, ast.Attribute)):
            name = (
                deco.id if isinstance(deco, ast.Name) else deco.attr
            )
        elif isinstance(deco, ast.Call):
            name = call_name(deco)
        if name is not None and (
            name == "hot_path" or name.endswith(".hot_path")
            or name.endswith("hot_path")
        ):
            return True
    return f"{src.path}::{qual}" in config.hot_path_functions


def _has_out_kwarg(node: ast.Call) -> bool:
    return any(kw.arg == "out" for kw in node.keywords)


def _check_call(
    node: ast.Call, config: AnalysisConfig
) -> str | None:
    """Return a violation message for ``node``, or ``None``."""
    dotted = call_name(node)
    for ctor in config.allocating_constructors:
        for prefix in ("np.", "numpy."):
            if dotted == prefix + ctor:
                return (
                    f"allocating constructor {dotted}() on a hot path; "
                    "preallocate in the workspace and reuse"
                )
    for fn in config.outful_functions:
        for prefix in ("np.", "numpy."):
            if dotted == prefix + fn and not _has_out_kwarg(node):
                return (
                    f"{dotted}() without out= allocates a fresh array "
                    "per call; write into a workspace buffer"
                )
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in _ALLOCATING_METHODS:
            return (
                f".{attr}() allocates on a hot path; preallocate and "
                "copy with np.copyto / compute with out="
            )
        if (
            attr in _UFUNC_METHODS
            and not _has_out_kwarg(node)
            and name_matches(dotted, attr)
            and dotted is not None
            and (dotted.startswith("np.") or dotted.startswith("numpy."))
        ):
            return (
                f"ufunc .{attr}() without out= allocates; pass a "
                "workspace buffer"
            )
    return None


def check(src: SourceFile, config: AnalysisConfig) -> Iterator[Finding]:
    """Yield allocations inside ``@hot_path``/config-listed functions."""
    quals = qualname_map(src.tree)
    for func, qual in quals.items():
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_hot(func, qual, src, config):
            continue
        if src.definition_ignored(RULE_ID, func):
            continue
        # Walk only this function's own statements — nested defs get
        # their own decision (a closure inside a hot function is hot
        # only if marked itself).
        nested = {
            n
            for n in quals
            if n is not func
            and isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and func.lineno < n.lineno
            and (n.end_lineno or 0) <= (func.end_lineno or 0)
        }

        def in_nested(node: ast.AST) -> bool:
            line = getattr(node, "lineno", 0)
            return any(
                f.body[0].lineno <= line <= (f.end_lineno or 0)
                for f in nested
                if f.body
            )

        for node in ast.walk(func):
            message = None
            if isinstance(node, ast.Call):
                message = _check_call(node, config)
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.MatMult
            ):
                message = (
                    "`@` matmul allocates its result; use "
                    "np.matmul(..., out=workspace)"
                )
            if message is None or in_nested(node):
                continue
            yield Finding(
                rule=RULE_ID,
                path=src.path,
                line=node.lineno,
                symbol=qual,
                message=message,
            )
