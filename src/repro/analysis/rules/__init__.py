"""The project lint rules.

Each rule module exposes ``RULE_ID`` (or several) and a ``check(src,
config)`` generator yielding raw :class:`~repro.analysis.findings.
Finding` objects; the engine applies suppressions and baselines on
top.  Rules are pure functions of the parsed source — no imports of
the code under analysis, no I/O.
"""

from __future__ import annotations

from repro.analysis.rules import (
    clock,
    contiguity,
    hot_path,
    lock_discipline,
    shm_lifecycle,
)

#: Every registered rule module, in reporting order.
RULE_MODULES = (
    lock_discipline,
    clock,
    shm_lifecycle,
    hot_path,
    contiguity,
)

#: Every rule identifier the engine knows (one module may host several
#: closely-related rules, e.g. the two clock-discipline checks).
ALL_RULE_IDS: tuple[str, ...] = tuple(
    rule_id
    for module in RULE_MODULES
    for rule_id in module.RULE_IDS
)
