"""Monotonic-clock discipline in the serving timing paths.

Two rules, both scoped to :attr:`~repro.analysis.config.AnalysisConfig.
clock_paths` (the serving layer):

* ``wall-clock`` — no ``time.time()`` / naive-``datetime`` reads.
  Deadlines, linger timers and latency stamps must use
  ``time.monotonic()`` / ``time.perf_counter()``: the wall clock can
  step (NTP, DST, operator) and a stepped deadline either fires years
  early or never.  The one legitimate wall-clock read is the epoch
  *rebase* helper itself (``perf_epoch_offset``), which carries an
  inline ignore with its justification.
* ``perf-counter-transit`` — a raw ``time.perf_counter()`` stamp may
  not be shipped across a process/queue boundary (``.send(...)`` /
  ``.put(...)``): ``perf_counter`` epochs are arbitrary per process,
  so a foreign stamp is meaningless until rebased (the PR 5
  cross-process stats bug — fleet windows computed across two epochs).
  Ship ``perf_epoch_offset()`` alongside and rebase at the receiver
  instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, enclosing_symbol, name_matches
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, SourceFile

WALL_CLOCK = "wall-clock"
PERF_TRANSIT = "perf-counter-transit"
RULE_IDS = (WALL_CLOCK, PERF_TRANSIT)

#: Channel-crossing call names whose payloads must not carry raw
#: perf_counter stamps.
_TRANSIT_CALLS = ("send", "send_bytes", "put", "put_nowait")


def _in_scope(src: SourceFile, config: AnalysisConfig) -> bool:
    return any(
        src.path == prefix or src.path.startswith(prefix.rstrip("/") + "/")
        for prefix in config.clock_paths
    )


def _contains_perf_counter(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and name_matches(
            call_name(sub), "perf_counter"
        ):
            return True
    return False


def check(src: SourceFile, config: AnalysisConfig) -> Iterator[Finding]:
    """Yield wall-clock reads and perf-counter boundary crossings."""
    if not _in_scope(src, config):
        return
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = call_name(node)
        for banned in config.wall_clock_calls:
            if name_matches(dotted, banned):
                yield Finding(
                    rule=WALL_CLOCK,
                    path=src.path,
                    line=node.lineno,
                    symbol=enclosing_symbol(src.tree, node),
                    message=(
                        f"{banned}() in a serving timing path; use "
                        "time.monotonic()/perf_counter() (wall clocks "
                        "step under NTP/DST and break deadlines)"
                    ),
                )
                break
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _TRANSIT_CALLS
            and any(
                _contains_perf_counter(arg)
                for arg in list(node.args)
                + [kw.value for kw in node.keywords]
            )
        ):
            yield Finding(
                rule=PERF_TRANSIT,
                path=src.path,
                line=node.lineno,
                symbol=enclosing_symbol(src.tree, node),
                message=(
                    "raw time.perf_counter() stamp shipped through "
                    f".{node.func.attr}(); perf_counter epochs are "
                    "per-process — send perf_epoch_offset() alongside "
                    "and rebase at the receiver"
                ),
            )
