"""Configuration of the static analysis run.

One frozen dataclass carries every knob the rules read, so a test can
run any rule against a fixture tree with a purpose-built config while
CI runs the defaults committed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_clock_paths() -> tuple[str, ...]:
    return ("src/repro/serve",)


def _default_contiguity_helpers() -> tuple[str, ...]:
    return ("ascontiguousarray",)


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs of one analysis run.

    Parameters
    ----------
    clock_paths:
        Path prefixes (POSIX-style, relative to the repo root) where
        the monotonic-clock rules apply — the serving timing paths.
        Wall-clock reads elsewhere (benchmark scripts stamping result
        files, the hardware cost model) are not timing-path bugs.
    hot_path_functions:
        Extra functions checked by the ``hot-path-alloc`` rule beyond
        those carrying the :func:`~repro.analysis.annotations.hot_path`
        decorator, as ``"path/to/file.py::qualname"`` entries (path
        relative to the repo root, qualname dotted for nesting, e.g.
        ``"src/repro/sem/cg.py::cg_solve.fused_dot"``).
    contiguity_helpers:
        Callable names (bare, matched against the call's last dotted
        component) accepted as a contiguity guard by the
        ``out-contiguity`` rule, alongside ``.flags`` inspection.
    allocating_constructors:
        Numpy-namespace callables the ``hot-path-alloc`` rule treats
        as fresh-array allocations.
    outful_functions:
        Numpy-namespace callables that accept ``out=``; calling one
        inside a hot path *without* ``out=`` allocates its result and
        is flagged.
    wall_clock_calls:
        Dotted call suffixes the ``wall-clock`` rule bans inside
        ``clock_paths`` (matched against the last two components of
        the resolved call name).
    """

    clock_paths: tuple[str, ...] = field(
        default_factory=_default_clock_paths
    )
    hot_path_functions: tuple[str, ...] = ()
    contiguity_helpers: tuple[str, ...] = field(
        default_factory=_default_contiguity_helpers
    )
    allocating_constructors: tuple[str, ...] = (
        "empty", "zeros", "ones", "full", "array", "copy", "arange",
        "linspace", "eye", "identity", "diag", "concatenate", "stack",
        "hstack", "vstack", "dstack", "column_stack", "tile", "repeat",
        "outer", "kron", "empty_like", "zeros_like", "ones_like",
        "full_like", "fromiter", "frombuffer", "meshgrid",
    )
    outful_functions: tuple[str, ...] = (
        "add", "subtract", "multiply", "divide", "true_divide",
        "floor_divide", "negative", "sqrt", "square", "abs", "absolute",
        "exp", "log", "maximum", "minimum", "power", "reciprocal",
        "matmul", "dot", "einsum", "tensordot", "take", "clip", "where",
    )
    wall_clock_calls: tuple[str, ...] = (
        "time.time", "time.ctime", "time.localtime", "time.gmtime",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "date.today",
    )
