"""CLI: ``python -m repro.analysis [--check] [paths...]``.

Two modes:

* default (report): print **every** finding, including ones covered by
  the baseline (marked ``[baselined]``), and exit 0 — the exploration
  view.
* ``--check`` (CI gate): apply the baseline; exit non-zero if any
  finding is *not* baselined, or if the baseline carries stale entries
  (suppressions matching nothing — dead weight that would mask a
  regression).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_paths, known_rule_ids

DEFAULT_PATHS = ("src/repro",)
DEFAULT_BASELINE = "analysis/baseline.toml"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project invariant linter (lock discipline, clock "
        "discipline, shm lifecycle, hot-path allocations, contiguity).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to analyze (default: {DEFAULT_PATHS[0]})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: fail on non-baselined findings and on stale "
        "baseline entries",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline TOML (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="root that finding paths are reported relative to "
        "(default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in known_rule_ids():
            print(rule_id)
        return 0

    try:
        baseline = Baseline.load(Path(args.root) / args.baseline)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings = analyze_paths(args.paths, root=args.root,
                             config=AnalysisConfig())
    new, used, stale = baseline.split(findings)

    if not args.check:
        baselined_keys = {e.key for e in used}
        for finding in findings:
            tag = (
                " [baselined]"
                if (finding.rule, finding.path, finding.symbol)
                in baselined_keys
                else ""
            )
            print(finding.render() + tag)
        print(
            f"{len(findings)} finding(s), "
            f"{len(findings) - len(new)} baselined, {len(new)} new"
        )
        return 0

    failed = False
    for finding in new:
        print(finding.render())
        failed = True
    for entry in stale:
        print(
            f"stale baseline entry: {entry.rule} / {entry.path} / "
            f"{entry.symbol} matches no current finding — delete it "
            f"(was: {entry.justification})"
        )
        failed = True
    if failed:
        print(
            f"FAILED: {len(new)} new finding(s), "
            f"{len(stale)} stale baseline entr(y/ies)",
            file=sys.stderr,
        )
        return 1
    print(
        f"analysis clean: {len(findings)} finding(s), all baselined "
        f"({len(baseline.entries)} suppression(s) in use)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
