"""The analysis engine: parse, run every rule, apply suppressions.

Rules yield raw findings; the engine owns the escape-hatch policy so
each rule stays a pure detector:

* per-line ``# lint: ignore[rule]`` and head-of-file
  ``# lint: file-ignore[rule]`` comments are filtered here;
* files that fail to parse surface as a ``parse-error`` finding (never
  a silent skip — an unparseable file is an unanalysed file);
* baseline matching happens one layer up, in the CLI, so the engine's
  output is the *complete* truth about the tree.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, SourceFile
from repro.analysis.rules import ALL_RULE_IDS, RULE_MODULES

PARSE_ERROR = "parse-error"

#: Directory names never descended into.
_SKIP_DIRS = ("__pycache__", ".git", ".pytest_cache")


def iter_rules() -> Iterator[tuple[str, object]]:
    """Yield ``(rule_id, module)`` for every registered rule."""
    for module in RULE_MODULES:
        for rule_id in module.RULE_IDS:
            yield rule_id, module


def known_rule_ids() -> tuple[str, ...]:
    """Every rule id the engine can emit (``parse-error`` included)."""
    return ALL_RULE_IDS + (PARSE_ERROR,)


def analyze_source(src: SourceFile, config: AnalysisConfig) -> list[Finding]:
    """Run every rule over one parsed file, minus suppressed findings."""
    findings: list[Finding] = []
    for module in RULE_MODULES:
        for finding in module.check(src, config):
            if not src.ignored(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _python_files(paths: Iterable[str], root: Path) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            yield path
        elif path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield Path(dirpath) / name


def analyze_paths(
    paths: Iterable[str],
    root: "Path | str",
    config: "AnalysisConfig | None" = None,
) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths``.

    ``root`` anchors the relative POSIX paths findings report (and
    baselines match against), independent of the caller's cwd.
    """
    root = Path(root).resolve()
    config = config or AnalysisConfig()
    findings: list[Finding] = []
    for file in _python_files(paths, root):
        try:
            rel = file.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = file.as_posix()
        text = file.read_text(encoding="utf-8")
        try:
            src = SourceFile.parse(rel, text)
        except SyntaxError as exc:
            findings.append(Finding(
                rule=PARSE_ERROR,
                path=rel,
                line=exc.lineno or 1,
                symbol="<module>",
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        findings.extend(analyze_source(src, config))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
