"""Runtime sanitizers: lock-order (deadlock) and guarded-state race checks.

Two dynamic complements to the static rules, both stdlib-only and both
**zero-overhead when disarmed**:

* :class:`LockOrderGraph` + :class:`TrackedLock` — a lockdep-style
  detector.  Locks are keyed by *class* (a name like
  ``"WorkspacePool._lock"``), and every acquisition while other locks
  are held records a directed edge ``held → acquired`` in a global
  graph.  The graph persists for the process lifetime, so two code
  paths that take the same pair of locks in opposite orders are caught
  even when they never overlap in time — the cycle check runs *before*
  blocking on the lock, raising :class:`LockOrderError` instead of
  deadlocking the test run.
* :func:`race_checked` — a class decorator that (only when
  ``REPRO_RACECHECK=1`` is set at import) wraps the class's declared
  locks in :class:`TrackedLock` and replaces every ``_GUARDED_BY``
  attribute with a descriptor asserting the guarding lock is held by
  the accessing thread.  Construction is exempt: instances arm after
  ``__init__`` returns, mirroring the static rule's ``__init__``
  exemption.

With the env var unset, :func:`race_checked` returns the class
untouched — production pays nothing.  Tests use :func:`instrument` to
force-instrument a subclass regardless of the environment.
"""

from __future__ import annotations

import functools
import os
import threading
from typing import Any, Callable, TypeVar

from repro.analysis.annotations import (
    GUARDED_BY_REGISTRY,
    TRACKED_LOCKS_REGISTRY,
)

_T = TypeVar("_T")

#: Read once at import: arming is a process-level decision, made before
#: any instrumentable class is defined.
_ACTIVE = os.environ.get("REPRO_RACECHECK", "") == "1"


def racecheck_active() -> bool:
    """Was ``REPRO_RACECHECK=1`` set when this module was imported?"""
    return _ACTIVE


class LockOrderError(RuntimeError):
    """Acquiring this lock would create a cycle in the lock-order graph."""


class RaceError(RuntimeError):
    """A guarded attribute was touched without holding its lock."""


class LockOrderGraph:
    """Global directed graph of observed lock-acquisition orders.

    Nodes are lock-class names; an edge ``A → B`` means some thread
    acquired ``B`` while holding ``A``.  A cycle means two orders
    coexist — a potential deadlock even if it has not yet struck.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        #: name -> {successor: example thread name that created the edge}
        self._edges: dict[str, dict[str, str]] = {}
        self._held = threading.local()

    # -- held stack (per thread) ---------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def held_by_current_thread(self) -> tuple[str, ...]:
        return tuple(self._stack())

    # -- graph ---------------------------------------------------------
    def _path(self, start: str, goal: str) -> "list[str] | None":
        """A directed path ``start → ... → goal``, or ``None``.

        Caller holds ``self._mu``.
        """
        seen = {start}
        frontier: list[list[str]] = [[start]]
        while frontier:
            path = frontier.pop()
            for succ in self._edges.get(path[-1], ()):
                if succ == goal:
                    return path + [succ]
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(path + [succ])
        return None

    def check(self, name: str) -> None:
        """Validate acquiring ``name`` now; record the new edges.

        Raises :class:`LockOrderError` (before the caller blocks on the
        lock) if any currently-held lock is reachable *from* ``name`` —
        i.e. the new edge would close a cycle.
        """
        stack = self._stack()
        if not stack or name in stack:
            return  # nothing held, or a reentrant acquire
        with self._mu:
            for held in stack:
                cycle = self._path(name, held)
                if cycle is not None:
                    order = " -> ".join(cycle + [name])
                    raise LockOrderError(
                        f"lock-order cycle: acquiring {name!r} while "
                        f"holding {held!r}, but the graph already has "
                        f"{order} (some thread acquires these in the "
                        "opposite order)"
                    )
            thread = threading.current_thread().name
            for held in stack:
                self._edges.setdefault(held, {}).setdefault(name, thread)

    def acquired(self, name: str) -> None:
        self._stack().append(name)

    def released(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break

    def edges(self) -> dict[str, tuple[str, ...]]:
        """Snapshot of the recorded order graph (for tests/diagnostics)."""
        with self._mu:
            return {
                name: tuple(sorted(succ))
                for name, succ in self._edges.items()
            }

    def reset(self) -> None:
        """Forget all recorded edges (test isolation)."""
        with self._mu:
            self._edges.clear()


#: The process-wide graph every :class:`TrackedLock` reports to unless
#: constructed with an explicit one.
_DEFAULT_GRAPH = LockOrderGraph()


def default_graph() -> LockOrderGraph:
    """The process-wide lock-order graph."""
    return _DEFAULT_GRAPH


class TrackedLock:
    """A lock wrapper that knows its owner and reports acquisition order.

    Wraps an existing ``threading.Lock``/``RLock`` (or creates a Lock).
    Adds two capabilities the raw primitives lack: :meth:`owned`
    (is the *current thread* holding it?) for the race checker, and
    lock-order bookkeeping against a :class:`LockOrderGraph` for the
    deadlock detector.  Reentrant acquires (RLock) skip the graph.
    """

    def __init__(
        self,
        name: str,
        lock: "Any | None" = None,
        graph: "LockOrderGraph | None" = None,
    ) -> None:
        self.name = name
        self._lock = lock if lock is not None else threading.Lock()
        self._graph = graph if graph is not None else _DEFAULT_GRAPH
        self._owner: "int | None" = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        reentrant = self._owner == me
        if not reentrant:
            self._graph.check(self.name)
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self._owner = me
            self._count += 1
            if self._count == 1:
                self._graph.acquired(self.name)
        return ok

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise RuntimeError(
                f"release of {self.name} by a thread that does not "
                "hold it"
            )
        self._count -= 1
        if self._count == 0:
            self._owner = None
            self._graph.released(self.name)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def owned(self) -> bool:
        """Is the current thread holding this lock?"""
        return self._owner == threading.get_ident()

    def locked(self) -> bool:
        return self._count > 0


class _GuardedAttribute:
    """Data descriptor asserting lock ownership on attribute access.

    Values live in the instance ``__dict__`` under the attribute's own
    name (the data descriptor shadows it), so ``vars(obj)`` stays
    readable and pickling round-trips.  Unarmed instances (still in
    ``__init__``) pass through unchecked.
    """

    def __init__(self, name: str, lock_name: str) -> None:
        self.name = name
        self.lock_name = lock_name

    def _check(self, instance: object, action: str) -> None:
        d = instance.__dict__
        if not d.get("_rc_armed", False):
            return
        lock = d.get(self.lock_name)
        if isinstance(lock, TrackedLock) and not lock.owned():
            raise RaceError(
                f"unguarded {action} of "
                f"{type(instance).__name__}.{self.name}: declared "
                f"guarded-by {self.lock_name}, which the current "
                "thread does not hold"
            )

    def __get__(self, instance: object, owner: "type | None" = None) -> Any:
        if instance is None:
            return self
        self._check(instance, "read")
        try:
            return instance.__dict__[self.name]
        except KeyError:
            raise AttributeError(self.name) from None

    def __set__(self, instance: object, value: Any) -> None:
        self._check(instance, "write")
        instance.__dict__[self.name] = value

    def __delete__(self, instance: object) -> None:
        self._check(instance, "delete")
        del instance.__dict__[self.name]


def _collect_registry(cls: type, registry: str) -> dict[str, str]:
    merged: dict[str, str] = {}
    for klass in reversed(cls.__mro__):
        value = vars(klass).get(registry)
        if isinstance(value, dict):
            merged.update(value)
    return merged


def _collect_tracked(cls: type) -> tuple[str, ...]:
    names: list[str] = []
    for klass in reversed(cls.__mro__):
        for name in vars(klass).get(TRACKED_LOCKS_REGISTRY, ()):
            if name not in names:
                names.append(name)
    return tuple(names)


def _instrument_class(
    cls: "type[_T]", graph: "LockOrderGraph | None" = None
) -> "type[_T]":
    guarded = _collect_registry(cls, GUARDED_BY_REGISTRY)
    tracked = list(_collect_tracked(cls))
    for lock_name in guarded.values():
        if lock_name not in tracked:
            tracked.append(lock_name)
    orig_init = cls.__init__

    @functools.wraps(orig_init)
    def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
        orig_init(self, *args, **kwargs)
        for lock_name in tracked:
            lock = self.__dict__.get(lock_name)
            if lock is not None and not isinstance(lock, TrackedLock):
                self.__dict__[lock_name] = TrackedLock(
                    f"{cls.__name__}.{lock_name}", lock=lock, graph=graph
                )
        self.__dict__["_rc_armed"] = True

    cls.__init__ = __init__  # type: ignore[method-assign]
    for attr, lock_name in guarded.items():
        setattr(cls, attr, _GuardedAttribute(attr, lock_name))
    cls._rc_instrumented = True  # type: ignore[attr-defined]
    return cls


def race_checked(cls: "type[_T]") -> "type[_T]":
    """Class decorator: arm the race checker if ``REPRO_RACECHECK=1``.

    Reads the class's ``_GUARDED_BY`` registry (attr → lock name) and
    ``_TRACKED_LOCKS`` tuple (locks to wrap for lock-order tracking
    even when they guard no registered attribute).  With the env var
    unset this is the identity function — no descriptors, no wrapped
    locks, no per-access cost.
    """
    if not _ACTIVE:
        return cls
    return _instrument_class(cls)


def instrument(
    cls: "type[_T]", graph: "LockOrderGraph | None" = None
) -> "type[_T]":
    """Force-instrumented *subclass* of ``cls``, environment regardless.

    For tests: the original class is left untouched, and ``graph``
    (default: the process-wide one) receives the lock-order edges.
    """
    sub = type(cls.__name__, (cls,), {"__module__": cls.__module__})
    return _instrument_class(sub, graph)
