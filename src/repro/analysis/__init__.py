"""Invariant-checking toolkit: project lint rules + runtime sanitizers.

Nine PRs of serving-stack growth produced a set of correctness
conventions that, until now, lived only in reviewers' heads — each one
born from a real bug (see ``docs/analysis.md`` for the catalog):

* **lock discipline** — attributes declared guarded by a lock must only
  be touched while that lock is held (the ``WorkspacePool._leased``
  unlocked-iteration bug, PR 5);
* **monotonic-clock discipline** — no wall-clock reads in serving
  timing paths, and raw ``perf_counter`` stamps must never cross a
  process boundary un-rebased (the cross-process epoch mismatch, PR 5);
* **shared-memory lifecycle** — every created ``SharedMemory`` block
  needs a failure-reachable ``close``/``unlink`` pairing (the
  ctor-failure unlink sweep, PR 5);
* **hot-path allocation** — functions on the solver hot path may not
  allocate fresh arrays or run ``out=``-less array math (the
  allocation-free CG contract, PR 1);
* **``out=`` contiguity** — array outputs taken by keyword must be
  contiguity-guarded before backing a kernel (the silent
  non-contiguous ``out=`` corruption, PR 3).

This package turns those conventions into machine-checked rules:

* a static, stdlib-``ast``-only lint engine — ``python -m
  repro.analysis --check`` walks the tree, applies every registered
  rule, subtracts the justified suppressions in
  ``analysis/baseline.toml``, and exits non-zero on anything new (CI
  gates on it);
* runtime sanitizers (:mod:`repro.analysis.runtime`) — an
  order-tracking lock wrapper that fails tests on lock-acquisition
  cycles, and a guarded-state race checker (``REPRO_RACECHECK=1``)
  that asserts lock ownership on every annotated attribute access;
* the annotation vocabulary the rules consume
  (:mod:`repro.analysis.annotations`): ``# guarded-by: _lock``
  trailing comments, per-class ``_GUARDED_BY`` registries, the
  :func:`~repro.analysis.annotations.hot_path` marker decorator,
  ``# requires-lock: _lock`` caller-holds-the-lock declarations, and
  ``# lint: ignore[rule]`` / ``# lint: file-ignore[rule]``
  suppressions.

Only :mod:`repro.analysis.annotations` and
:mod:`repro.analysis.runtime` are imported by production code (both
stdlib-only, numpy-free); the engine itself is a dev/CI tool.
"""

from __future__ import annotations

from repro.analysis.annotations import hot_path
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_paths, analyze_source, iter_rules
from repro.analysis.findings import Finding
from repro.analysis.runtime import (
    LockOrderError,
    LockOrderGraph,
    RaceError,
    TrackedLock,
    instrument,
    race_checked,
    racecheck_active,
)

__all__ = [
    "AnalysisConfig",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LockOrderError",
    "LockOrderGraph",
    "RaceError",
    "TrackedLock",
    "analyze_paths",
    "analyze_source",
    "hot_path",
    "instrument",
    "iter_rules",
    "race_checked",
    "racecheck_active",
]
