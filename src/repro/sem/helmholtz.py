"""BK5-style Helmholtz problem: the CEED bake-off operator end-to-end.

The paper positions its kernel next to CEED's bake-off kernel BK5, which
"closely resembles the local Poisson operator, but also considers one
more geometric factor" — the collocation mass term.  This module lifts
:func:`repro.sem.operators.helmholtz_local` to a solvable global problem
``(A + lam B) u = b``, strictly SPD for ``lam > 0`` even without
boundary conditions, with the same backend-injection hook as
:class:`~repro.sem.poisson.PoissonProblem`.
"""

from __future__ import annotations

import copy
from dataclasses import InitVar, dataclass, field
from typing import Callable

import numpy as np
from numpy.typing import NDArray

from repro.sem.cg import check_precision, cg_solve, cg_solve_mixed
from repro.sem.element import ReferenceElement
from repro.sem.gather_scatter import GatherScatter
from repro.sem.geometry import Geometry, geometric_factors
from repro.sem.kernels import accepts_keyword, resolve_ax_backend
from repro.sem.mesh import BoxMesh
from repro.sem.operators import ax_local
from repro.sem.poisson import AxBackend
from repro.sem.workspace import SolverWorkspace, cached_batch_workspace


@dataclass
class HelmholtzProblem:
    """Global SPD Helmholtz system ``(A + lam B) u = b`` on a box mesh.

    Parameters
    ----------
    mesh:
        The SEM mesh.
    lam:
        Helmholtz coefficient (> 0 makes the operator strictly SPD, so
        no Dirichlet mask is needed — the natural BK5 setting).
    ax_backend:
        Stiffness-part backend — a registry name (see
        :mod:`repro.sem.kernels`) or a callable (the accelerator plugs
        in here; the mass term is a cheap diagonal axpy the paper's
        kernel leaves on the host).
    threads:
        Element-block worker threads for blocked kernels, carried by
        the problem's workspaces (see
        :func:`~repro.sem.kernels.ax_local_matmul`).
    precision:
        Default solve precision policy (``"fp64"`` or ``"mixed"``), as
        :class:`~repro.sem.poisson.PoissonProblem`.

    Like :class:`~repro.sem.poisson.PoissonProblem`, the problem owns a
    :class:`~repro.sem.workspace.SolverWorkspace` and :meth:`apply` runs
    allocation-free when the backend supports ``out=``/``workspace=``;
    a stacked ``(B, n)`` input runs all systems through the cached
    batched workspace.
    """

    mesh: BoxMesh
    lam: float = 1.0
    ax_backend: AxBackend | str = ax_local
    threads: int = 1
    precision: str = "fp64"
    # Spec/rebuild hand-off (see repro.sem.spec.ProblemParts), as in
    # PoissonProblem: adopt prebuilt (possibly shared-memory) state.
    _parts: InitVar["object | None"] = None
    geometry: Geometry = field(init=False)
    gs: GatherScatter = field(init=False)
    workspace: SolverWorkspace = field(init=False, repr=False)

    def __post_init__(self, _parts: "object | None" = None) -> None:
        check_precision(self.precision)
        if self.lam <= 0:
            raise ValueError(f"lam must be > 0 for an SPD system, got {self.lam}")
        if _parts is not None:
            self.geometry = _parts.geometry
            self.gs = _parts.gather_scatter
        else:
            self.geometry = geometric_factors(self.mesh)
            self.gs = GatherScatter.from_mesh(self.mesh)
        self.ax_backend = resolve_ax_backend(self.ax_backend)
        self.workspace = SolverWorkspace.for_mesh(
            self.mesh, threads=self.threads
        )
        self._batch_workspaces: dict[object, SolverWorkspace] = {}
        self._ax_out = accepts_keyword(self.ax_backend, "out")
        self._ax_ws = accepts_keyword(self.ax_backend, "workspace")
        self._precond_diag: NDArray[np.float64] | None = (
            None if _parts is None else _parts.precond_diag
        )

    # ------------------------------------------------------------------
    @property
    def ref(self) -> ReferenceElement:
        """The mesh's reference element."""
        return self.mesh.ref

    @property
    def n_dofs(self) -> int:
        """Number of global DOFs (no boundary masking in BK5)."""
        return self.mesh.n_global

    @property
    def operator(self) -> Callable[..., NDArray[np.float64]]:
        """The global SPD operator callback (:meth:`apply`) — the
        uniform protocol shared with
        :class:`~repro.sem.poisson.PoissonProblem`."""
        return self.apply

    @property
    def operator32(self) -> Callable[..., NDArray[np.float32]]:
        """The fp32 twin operator callback (:meth:`apply32`), driving
        the mixed-precision inner solves."""
        return self.apply32

    def precond_diag(self) -> NDArray[np.float64]:
        """The Jacobi diagonal (:meth:`diagonal`), computed once and
        cached; treat the returned array as read-only."""
        if self._precond_diag is None:
            self._precond_diag = self.diagonal()
        return self._precond_diag

    def clone(self) -> "HelmholtzProblem":
        """A solve replica sharing this problem's immutable state.

        Mirrors :meth:`repro.sem.poisson.PoissonProblem.clone`: the
        mesh, geometry, resolved backend and force-computed Jacobi
        diagonal are shared read-only; the gather-scatter operator is
        :meth:`~repro.sem.gather_scatter.GatherScatter.replicate`-d
        (private scratch) and the workspaces are fresh, so the replica
        can solve concurrently with ``self``.

        Returns
        -------
        HelmholtzProblem
            An independent-solve replica of this problem.
        """
        # Share-by-default shallow copy + explicit mutable resets, so
        # future fields are shared automatically (see PoissonProblem).
        twin = copy.copy(self)
        twin._precond_diag = self.precond_diag()
        twin.gs = self.gs.replicate()
        twin.workspace = SolverWorkspace.for_mesh(
            self.mesh, threads=self.threads
        )
        twin._batch_workspaces = {}
        return twin

    def spec(self):
        """A picklable :class:`~repro.sem.spec.ProblemSpec` (see
        :meth:`repro.sem.poisson.PoissonProblem.spec`)."""
        from repro.sem.spec import problem_spec

        return problem_spec(self)

    def export_shared(self):
        """Export immutable arrays for worker fleets (see
        :meth:`repro.sem.poisson.PoissonProblem.export_shared`)."""
        from repro.sem.spec import export_shared_problem

        return export_shared_problem(self)

    def batch_workspace(
        self, batch: int, dtype: "np.dtype | type" = np.float64
    ) -> SolverWorkspace:
        """Cached workspace for ``batch`` stacked right-hand sides
        (``dtype=np.float32`` for the mixed path's inner solves)."""
        return cached_batch_workspace(
            self._batch_workspaces, self.mesh, batch, self.threads,
            self.workspace, dtype=dtype,
        )

    def apply(
        self,
        u_global: NDArray[np.float64],
        out: NDArray[np.float64] | None = None,
    ) -> NDArray[np.float64]:
        """Apply ``A + lam B`` globally (scatter, local op, gather).

        Accepts a single global vector or a stacked ``(B, n)`` block
        (a batch of one runs the single-system path on its only row).
        """
        if u_global.ndim == 2 and u_global.shape[0] == 1:
            if out is not None:
                self.apply(u_global[0], out=out[0])
                return out
            return self.apply(u_global[0])[None]
        batched = u_global.ndim == 2
        ws = (
            self.batch_workspace(u_global.shape[0])
            if batched else self.workspace
        )
        self.gs.scatter(u_global, out=ws.u_local)
        if self._ax_out and self._ax_ws:
            w_local = self.ax_backend(
                self.ref, ws.u_local, self.geometry.g,
                out=ws.w_local, workspace=ws,
            )
            # The mass-term axpy reuses the elementwise scratch, which the
            # kernel is done with by the time it returns.  The scratch is
            # single-system even for batched workspaces, so a stacked
            # block sweeps the axpy one system at a time.
            num_e = self.mesh.num_elements
            tmp = ws.tmp[:num_e]
            rows = w_local if batched else (w_local,)
            u_rows = ws.u_local if batched else (ws.u_local,)
            for w_row, u_row in zip(rows, u_rows):
                np.multiply(self.geometry.mass, u_row, out=tmp)
                np.multiply(tmp, self.lam, out=tmp)
                w_row += tmp
        elif batched:
            w_local = ws.w_local
            for b in range(u_global.shape[0]):
                wb = self.ax_backend(self.ref, ws.u_local[b], self.geometry.g)
                np.copyto(w_local[b], wb)
                w_local[b] += self.lam * self.geometry.mass * ws.u_local[b]
        else:
            w_local = self.ax_backend(self.ref, ws.u_local, self.geometry.g)
            w_local = w_local + self.lam * self.geometry.mass * ws.u_local
        return self.gs.gather(w_local, out=out)

    def apply32(
        self,
        u_global: NDArray[np.float32],
        out: NDArray[np.float32] | None = None,
    ) -> NDArray[np.float32]:
        """fp32 twin of :meth:`apply` over the same physical operator.

        Streams the cached fp32 geometry and gather-scatter twins
        through the dtype-generic kernels (half the bytes per DOF); the
        mass-term axpy runs on the fp32 ``mass`` copy.  Inputs and
        outputs are fp32.
        """
        if u_global.ndim == 2 and u_global.shape[0] == 1:
            if out is not None:
                self.apply32(u_global[0], out=out[0])
                return out
            return self.apply32(u_global[0])[None]
        batched = u_global.ndim == 2
        ws = self.batch_workspace(
            u_global.shape[0] if batched else 1, dtype=np.float32
        )
        gs = self.gs.as_dtype(np.float32)
        geo = self.geometry.as_dtype(np.float32)
        gs.scatter(u_global, out=ws.u_local)
        if self._ax_out and self._ax_ws:
            w_local = self.ax_backend(
                self.ref, ws.u_local, geo.g, out=ws.w_local, workspace=ws,
            )
            num_e = self.mesh.num_elements
            tmp = ws.tmp[:num_e]
            rows = w_local if batched else (w_local,)
            u_rows = ws.u_local if batched else (ws.u_local,)
            for w_row, u_row in zip(rows, u_rows):
                np.multiply(geo.mass, u_row, out=tmp)
                np.multiply(tmp, self.lam, out=tmp)
                w_row += tmp
        elif batched:
            w_local = ws.w_local
            for b in range(u_global.shape[0]):
                wb = self.ax_backend(self.ref, ws.u_local[b], geo.g)
                np.copyto(w_local[b], wb)
                w_local[b] += self.lam * geo.mass * ws.u_local[b]
        else:
            w_local = self.ax_backend(self.ref, ws.u_local, geo.g)
            w_local = (
                w_local + self.lam * geo.mass * ws.u_local
            ).astype(np.float32, copy=False)
        return gs.gather(w_local, out=out)

    def solve(
        self,
        b: NDArray[np.float64],
        tol: float = 1e-10,
        maxiter: int = 1000,
        x0: NDArray[np.float64] | None = None,
        precision: str | None = None,
    ):
        """Solve ``(A + lam B) x = b`` at ``precision`` (default: the
        problem's own policy); see
        :meth:`repro.sem.poisson.PoissonProblem.solve`."""
        precision = check_precision(
            self.precision if precision is None else precision
        )
        b = np.asarray(b, dtype=np.float64)
        batch = b.shape[0] if b.ndim == 2 else 1
        ws = self.batch_workspace(batch)
        diag = self.precond_diag()
        if precision == "fp64":
            return cg_solve(
                self.apply, b, x0=x0, precond_diag=diag, tol=tol,
                maxiter=maxiter, workspace=ws,
            )
        ws32 = self.batch_workspace(batch, dtype=np.float32)
        return cg_solve_mixed(
            self.apply, self.apply32, b, x0=x0, precond_diag=diag,
            tol=tol, maxiter=maxiter, workspace=ws, workspace32=ws32,
        )

    def diagonal(self) -> NDArray[np.float64]:
        """Assembled operator diagonal (for Jacobi preconditioning)."""
        d2 = self.ref.deriv ** 2
        g = self.geometry.g
        diag = np.einsum("li,eljk->eijk", d2, g[:, 0], optimize=True)
        diag += np.einsum("lj,eilk->eijk", d2, g[:, 3], optimize=True)
        diag += np.einsum("lk,eijl->eijk", d2, g[:, 5], optimize=True)
        dd = np.diag(self.ref.deriv)
        diag += 2.0 * g[:, 1] * dd[:, None, None] * dd[None, :, None]
        diag += 2.0 * g[:, 2] * dd[:, None, None] * dd[None, None, :]
        diag += 2.0 * g[:, 4] * dd[None, :, None] * dd[None, None, :]
        diag += self.lam * self.geometry.mass
        return self.gs.gather(diag)

    def rhs_from_function(
        self, f: Callable[[NDArray, NDArray, NDArray], NDArray]
    ) -> NDArray[np.float64]:
        """Weak right-hand side ``b = Q^T B f`` (no masking)."""
        x, y, z = self.mesh.coords
        return self.gs.gather(f(x, y, z) * self.geometry.mass)

    def l2_error(
        self,
        u_global: NDArray[np.float64],
        exact: Callable[[NDArray, NDArray, NDArray], NDArray],
    ) -> float:
        """Discrete L2 error against an analytic field."""
        x, y, z = self.mesh.coords
        diff = self.gs.scatter(u_global) - exact(x, y, z)
        return float(np.sqrt(np.sum(self.geometry.mass * diff ** 2)))


def cosine_manufactured(
    extent: tuple[float, float, float] = (1.0, 1.0, 1.0),
    lam: float = 1.0,
) -> tuple[
    Callable[[NDArray, NDArray, NDArray], NDArray],
    Callable[[NDArray, NDArray, NDArray], NDArray],
]:
    """``(u_exact, forcing)`` for ``-lap(u) + lam u = f`` with the
    pure-Neumann-compatible solution
    ``u = cos(pi x/Lx) cos(pi y/Ly) cos(pi z/Lz)``.

    The cosine has zero normal derivative on the box boundary, so the
    unmasked weak form converges spectrally without boundary terms.
    """
    lx, ly, lz = extent
    coef = np.pi ** 2 * (1.0 / lx ** 2 + 1.0 / ly ** 2 + 1.0 / lz ** 2)

    def u_exact(x: NDArray, y: NDArray, z: NDArray) -> NDArray:
        return (
            np.cos(np.pi * x / lx)
            * np.cos(np.pi * y / ly)
            * np.cos(np.pi * z / lz)
        )

    def forcing(x: NDArray, y: NDArray, z: NDArray) -> NDArray:
        return (coef + lam) * u_exact(x, y, z)

    return u_exact, forcing
