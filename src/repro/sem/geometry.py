"""Geometric factors ``G^e`` of the SEM Poisson operator.

For the mapping ``x(r)`` from the reference element to element ``e`` the
paper's tensor ``G^e`` has the six unique entries (it is symmetric)

``G_pq = w_i w_j w_k  |J|  sum_m (dr_p/dx_m)(dr_q/dx_m)``

evaluated at each GLL point, with ``(p, q)`` in the order
``(rr, rs, rt, ss, st, tt)`` — exactly the ``gxyz[0..5]`` layout consumed
by Listing 1.  All derivatives are taken spectrally (apply ``D`` to the
nodal coordinates), so curved elements are handled exactly at the
discretization's own accuracy.

Storage is split (SoA): the six components live in one C-contiguous
``(6, E, nx, nx, nx)`` array (:attr:`Geometry.g_soa`) so each component
is a single contiguous streamable operand — the software analogue of the
paper's banked external-memory layout, and what lets the ``Ax`` kernels'
``g[:, c]`` reads run without numpy's strided chunked-buffer path.  The
historical interleaved ``(E, 6, nx, nx, nx)`` shape survives as the
zero-copy compatibility view :attr:`Geometry.g`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from repro.sem.element import ReferenceElement
from repro.sem.mesh import BoxMesh

#: Order of the six unique symmetric entries of G, matching gxyz[0..5].
G_COMPONENTS: tuple[str, ...] = ("rr", "rs", "rt", "ss", "st", "tt")


def reference_gradient(
    ref: ReferenceElement, u: NDArray[np.float64]
) -> tuple[NDArray[np.float64], NDArray[np.float64], NDArray[np.float64]]:
    """Spectral gradient ``(du/dr, du/ds, du/dt)`` of local fields.

    Parameters
    ----------
    ref:
        Reference element providing ``D``.
    u:
        Local nodal fields, shape ``(E, nx, nx, nx)`` indexed
        ``[e, i, j, k]`` with ``i`` along ``r``.
    """
    d = ref.deriv
    ur = np.einsum("il,eljk->eijk", d, u, optimize=True)
    us = np.einsum("jl,eilk->eijk", d, u, optimize=True)
    ut = np.einsum("kl,eijl->eijk", d, u, optimize=True)
    return ur, us, ut


@dataclass(frozen=True)
class Geometry:
    """Geometric data of a mesh: ``G`` factors, Jacobian, diagonal mass.

    Attributes
    ----------
    g_soa:
        Geometric factors in the split (SoA) layout, one C-contiguous
        array of shape ``(6, E, nx, nx, nx)`` in the
        :data:`G_COMPONENTS` order; ``g_soa[c]`` is a contiguous
        component field.
    jac:
        Jacobian determinant ``|J|`` at every node, shape
        ``(E, nx, nx, nx)``; positive for valid meshes.
    mass:
        Diagonal mass matrix ``B = w_i w_j w_k |J|``, same shape as
        ``jac``.  ``sum(mass)`` equals the domain volume (with interface
        nodes counted once per element).
    """

    g_soa: NDArray[np.float64] = field(repr=False)
    jac: NDArray[np.float64] = field(repr=False)
    mass: NDArray[np.float64] = field(repr=False)

    def __post_init__(self) -> None:
        if self.g_soa.ndim != 5 or self.g_soa.shape[0] != 6:
            raise ValueError(
                f"g_soa must be (6, E, nx, nx, nx), got {self.g_soa.shape}"
            )
        if not self.g_soa.flags.c_contiguous:
            object.__setattr__(
                self, "g_soa", np.ascontiguousarray(self.g_soa)
            )

    @classmethod
    def from_interleaved(
        cls,
        g: NDArray[np.float64],
        jac: NDArray[np.float64],
        mass: NDArray[np.float64],
    ) -> "Geometry":
        """Build from the historical ``(E, 6, nx, nx, nx)`` layout (copies)."""
        if g.ndim != 5 or g.shape[1] != 6:
            raise ValueError(
                f"interleaved g must be (E, 6, nx, nx, nx), got {g.shape}"
            )
        g_soa = np.ascontiguousarray(g.transpose(1, 0, 2, 3, 4))
        return cls(g_soa=g_soa, jac=jac, mass=mass)

    @property
    def g(self) -> NDArray[np.float64]:
        """Zero-copy ``(E, 6, nx, nx, nx)`` compatibility view.

        ``g[:, c]`` on this view *is* the contiguous ``g_soa[c]``, so
        every historical consumer transparently gets the streaming
        layout.
        """
        return self.g_soa.transpose(1, 0, 2, 3, 4)

    def component(self, c: "int | str") -> NDArray[np.float64]:
        """Contiguous ``(E, nx, nx, nx)`` view of one symmetric component.

        ``c`` is an index into, or a name from, :data:`G_COMPONENTS`.
        """
        if isinstance(c, str):
            try:
                c = G_COMPONENTS.index(c)
            except ValueError:
                raise KeyError(
                    f"unknown G component {c!r}; "
                    f"available: {', '.join(G_COMPONENTS)}"
                ) from None
        return self.g_soa[c]

    @property
    def num_elements(self) -> int:
        """Number of elements the factors were computed for."""
        return self.g_soa.shape[1]

    # ------------------------------------------------------------------
    # Reduced-precision twins (mixed-precision solve path)
    # ------------------------------------------------------------------
    def as_dtype(self, dtype: "np.dtype | type") -> "Geometry":
        """A :class:`Geometry` twin with all arrays cast to ``dtype``.

        ``float64`` returns ``self``; other dtypes (the fp32 inner-solve
        path) get a read-only contiguous copy, computed once and cached
        on this instance — the cast covers ``6 + 2`` field-sized arrays,
        so it must never be paid per ``Ax`` application.  The rounding
        happens here, once, from the fp64 factors; the fp32 kernels then
        stream half the bytes per DOF, which is the entire point of the
        mixed path on a bandwidth-bound operator.
        """
        dtype = np.dtype(dtype)
        if dtype == self.g_soa.dtype:
            return self
        twins: dict | None = getattr(self, "_dtype_twins", None)
        if twins is None:
            twins = {}
            object.__setattr__(self, "_dtype_twins", twins)
        twin = twins.get(dtype.str)
        if twin is None:
            twin = Geometry(
                g_soa=np.ascontiguousarray(self.g_soa.astype(dtype)),
                jac=np.ascontiguousarray(self.jac.astype(dtype)),
                mass=np.ascontiguousarray(self.mass.astype(dtype)),
            )
            for arr in (twin.g_soa, twin.jac, twin.mass):
                arr.setflags(write=False)
            twins[dtype.str] = twin
        return twin

    def adopt_twin(self, twin: "Geometry") -> None:
        """Register an externally built dtype twin (shared-memory path).

        A process-sharded worker attaches the parent's fp32 geometry
        export and installs it here, so :meth:`as_dtype` resolves to the
        shared pages instead of each worker paying a private field-sized
        cast.  The twin must match this geometry's shapes exactly.
        """
        if twin.g_soa.shape != self.g_soa.shape:
            raise ValueError(
                f"twin g_soa shape {twin.g_soa.shape} != {self.g_soa.shape}"
            )
        if twin.g_soa.dtype == self.g_soa.dtype:
            raise ValueError(
                f"twin dtype {twin.g_soa.dtype} matches own dtype; "
                "nothing to adopt"
            )
        twins: dict | None = getattr(self, "_dtype_twins", None)
        if twins is None:
            twins = {}
            object.__setattr__(self, "_dtype_twins", twins)
        twins[np.dtype(twin.g_soa.dtype).str] = twin

    # ------------------------------------------------------------------
    # Shared-memory protocol (process-level sharding)
    # ------------------------------------------------------------------
    def export_shared(self):
        """Export the geometric arrays into one shared-memory block.

        The geometry is the largest immutable array set a solve carries
        (``g_soa`` alone is ``6 * E * nx^3`` doubles); the process-level
        shard (:class:`repro.serve.procshard.ProcessShardedSolveService`)
        exports it once and every worker attaches the same physical
        pages instead of recomputing or copying per process.

        Returns
        -------
        (SharedMemory, SharedArrayManifest)
            The owning handle (the caller must eventually ``close()`` +
            ``unlink()`` it) and the picklable manifest that
            :meth:`attach_shared` consumes in any process.
        """
        from repro.sem.shared import export_shared_arrays

        return export_shared_arrays(
            {"g_soa": self.g_soa, "jac": self.jac, "mass": self.mass}
        )

    @classmethod
    def attach_shared(cls, manifest) -> "Geometry":
        """Rebuild a :class:`Geometry` over an exported block, zero-copy.

        The returned instance's arrays are read-only views into the
        shared pages (a stray in-place write raises instead of
        corrupting every attached process); the shared-memory mapping's
        lifetime is tied to the returned object.

        Parameters
        ----------
        manifest:
            The :class:`~repro.sem.shared.SharedArrayManifest` from
            :meth:`export_shared`.
        """
        from repro.sem.shared import attach_shared_arrays

        shm, views = attach_shared_arrays(manifest)
        geo = cls(g_soa=views["g_soa"], jac=views["jac"], mass=views["mass"])
        # Keep the mapping alive exactly as long as the views are
        # reachable (frozen dataclass: bypass the frozen __setattr__).
        object.__setattr__(geo, "_shm", shm)
        return geo


def geometric_factors(mesh: BoxMesh) -> Geometry:
    """Compute :class:`Geometry` for every element of ``mesh``.

    Raises
    ------
    ValueError
        If any nodal Jacobian determinant is non-positive (tangled mesh).
    """
    ref = mesh.ref
    w3 = ref.weights_3d()

    # Jacobian matrix entries dx_m/dr_p, each (E, nx, nx, nx).
    grads = [reference_gradient(ref, mesh.coords[m]) for m in range(3)]
    # jmat[..., m, p] = dx_m / dr_p
    jmat = np.stack(
        [np.stack(grads[m], axis=-1) for m in range(3)], axis=-2
    )  # (E, nx, nx, nx, 3(m), 3(p))

    jac = np.linalg.det(jmat)
    if np.any(jac <= 0):
        bad = int(np.count_nonzero(jac <= 0))
        raise ValueError(
            f"mesh is tangled: {bad} nodal Jacobians are non-positive"
        )
    jinv = np.linalg.inv(jmat)  # jinv[..., p, m] = dr_p / dx_m

    scale = w3[None] * jac  # (E, nx, nx, nx)
    g_soa = np.empty((6, mesh.num_elements) + jac.shape[1:])
    comp = 0
    for p in range(3):
        for q in range(p, 3):
            g_soa[comp] = scale * np.einsum(
                "...m,...m->...", jinv[..., p, :], jinv[..., q, :]
            )
            comp += 1
    mass = w3[None] * jac
    return Geometry(g_soa=g_soa, jac=jac, mass=mass)


def affine_geometric_factors(
    ref: ReferenceElement, num_elements: int, hx: float, hy: float, hz: float
) -> Geometry:
    """Closed-form factors for axis-aligned boxes of size ``hx x hy x hz``.

    For an affine, axis-aligned element ``dr/dx = 2/hx`` etc., the Jacobian
    is constant ``hx hy hz / 8``, the off-diagonal ``G`` entries vanish and

    ``G_rr = w3 * (hy hz) / (2 hx)`` (cyclic for ss, tt).

    Used as an independent verification path for :func:`geometric_factors`.
    """
    for name, h in (("hx", hx), ("hy", hy), ("hz", hz)):
        if h <= 0:
            raise ValueError(f"{name} must be positive, got {h}")
    nx = ref.n_points
    w3 = ref.weights_3d()
    jac_const = hx * hy * hz / 8.0
    shape = (num_elements, nx, nx, nx)
    g_soa = np.zeros((6,) + shape)
    g_soa[0] = w3[None] * (hy * hz) / (2.0 * hx)   # rr
    g_soa[3] = w3[None] * (hx * hz) / (2.0 * hy)   # ss
    g_soa[5] = w3[None] * (hx * hy) / (2.0 * hz)   # tt
    jac = np.full(shape, jac_const)
    mass = w3[None] * jac
    return Geometry(g_soa=g_soa, jac=jac, mass=mass)
