"""Structured hexahedral SEM meshes of a box domain.

A :class:`BoxMesh` carries per-element nodal coordinates in the layout used
throughout the library: arrays of shape ``(E, nx, nx, nx)`` indexed
``[e, i, j, k]`` where ``i`` runs along the reference ``r`` direction
(Listing 1's fastest index: the flattened local id is
``ijk = i + j*nx + k*nx*nx``), and a local-to-global map for the
gather-scatter (direct-stiffness) operation.

Meshes may be smoothly deformed through :meth:`BoxMesh.deform`; all
geometric factors are computed spectrally from the nodal coordinates, so
curvilinear elements are supported throughout (the ``G^e`` tensor of the
paper is never assumed diagonal).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np
from numpy.typing import NDArray

from repro.sem.element import ReferenceElement

DeformFn = Callable[
    [NDArray[np.float64], NDArray[np.float64], NDArray[np.float64]],
    tuple[NDArray[np.float64], NDArray[np.float64], NDArray[np.float64]],
]


@dataclass(frozen=True)
class BoxMesh:
    """Tensor-product mesh of ``ex x ey x ez`` hexahedral elements.

    Use :meth:`BoxMesh.build` to construct.  Attributes of interest:

    Attributes
    ----------
    ref:
        The shared :class:`ReferenceElement`.
    shape:
        ``(ex, ey, ez)`` element counts per direction.
    extent:
        ``(Lx, Ly, Lz)`` physical box size (origin at 0).
    coords:
        Nodal coordinates, shape ``(3, E, nx, nx, nx)`` (x, y, z).
    l2g:
        Local-to-global node map, shape ``(E, nx, nx, nx)``, values in
        ``[0, n_global)``.  Shared faces/edges/vertices receive the same
        global id, which is what makes the gather-scatter assemble the
        continuous system.
    """

    ref: ReferenceElement
    shape: tuple[int, int, int]
    extent: tuple[float, float, float]
    coords: NDArray[np.float64] = field(repr=False)
    l2g: NDArray[np.int64] = field(repr=False)
    n_global: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        ref: ReferenceElement,
        shape: tuple[int, int, int],
        extent: tuple[float, float, float] = (1.0, 1.0, 1.0),
    ) -> "BoxMesh":
        """Create the mesh of the box ``[0,Lx] x [0,Ly] x [0,Lz]``.

        Parameters
        ----------
        ref:
            Reference element (fixes the polynomial degree).
        shape:
            Elements per direction ``(ex, ey, ez)``, each >= 1.
        extent:
            Box side lengths ``(Lx, Ly, Lz)``, each > 0.
        """
        ex, ey, ez = shape
        lx, ly, lz = extent
        if min(ex, ey, ez) < 1:
            raise ValueError(f"element counts must be >= 1, got {shape}")
        if min(lx, ly, lz) <= 0:
            raise ValueError(f"extents must be positive, got {extent}")
        n = ref.degree
        nx = ref.n_points
        num_e = ex * ey * ez

        # 1-D global node coordinates per direction: element offsets plus
        # scaled GLL points; shared endpoints appear once.
        def axis_nodes(ne: int, length: float) -> NDArray[np.float64]:
            h = length / ne
            pts01 = (ref.points + 1.0) / 2.0  # GLL points mapped to [0,1]
            g = np.empty(ne * n + 1)
            for e in range(ne):
                g[e * n : e * n + nx] = e * h + pts01 * h
            return g

        gx_nodes = axis_nodes(ex, lx)
        gy_nodes = axis_nodes(ey, ly)
        gz_nodes = axis_nodes(ez, lz)
        ngx, ngy, ngz = ex * n + 1, ey * n + 1, ez * n + 1

        coords = np.empty((3, num_e, nx, nx, nx))
        l2g = np.empty((num_e, nx, nx, nx), dtype=np.int64)
        li = np.arange(nx)
        for iz in range(ez):
            for iy in range(ey):
                for ix in range(ex):
                    e = (iz * ey + iy) * ex + ix
                    gxi = ix * n + li  # global 1-D indices along x
                    gyi = iy * n + li
                    gzi = iz * n + li
                    coords[0, e] = gx_nodes[gxi][:, None, None]
                    coords[1, e] = gy_nodes[gyi][None, :, None]
                    coords[2, e] = gz_nodes[gzi][None, None, :]
                    gid = (
                        gzi[None, None, :] * ngy + gyi[None, :, None]
                    ) * ngx + gxi[:, None, None]
                    l2g[e] = gid
        return cls(
            ref=ref,
            shape=(ex, ey, ez),
            extent=(float(lx), float(ly), float(lz)),
            coords=coords,
            l2g=l2g,
            n_global=ngx * ngy * ngz,
        )

    # ------------------------------------------------------------------
    @property
    def num_elements(self) -> int:
        """Total number of elements ``E``."""
        return self.shape[0] * self.shape[1] * self.shape[2]

    @property
    def num_local_dofs(self) -> int:
        """Total element-local DOFs ``E * (N+1)^3`` (with duplicates)."""
        return self.num_elements * self.ref.dofs_per_element

    @property
    def global_grid(self) -> tuple[int, int, int]:
        """Global node counts per direction ``(ex*N+1, ey*N+1, ez*N+1)``."""
        ex, ey, ez = self.shape
        n = self.ref.degree
        return (ex * n + 1, ey * n + 1, ez * n + 1)

    # ------------------------------------------------------------------
    def boundary_mask(self) -> NDArray[np.bool_]:
        """Boolean mask over global nodes that lie on the box boundary.

        Used to impose homogeneous Dirichlet conditions (the paper solves
        the homogeneous Poisson problem).
        """
        ngx, ngy, ngz = self.global_grid
        mask = np.zeros((ngz, ngy, ngx), dtype=bool)
        mask[0, :, :] = mask[-1, :, :] = True
        mask[:, 0, :] = mask[:, -1, :] = True
        mask[:, :, 0] = mask[:, :, -1] = True
        return mask.reshape(-1)

    def multiplicity(self) -> NDArray[np.float64]:
        """Number of elements sharing each global node (>= 1).

        The inverse multiplicity is Nekbone's counterweight for averaging
        element-local redundant values.
        """
        counts = np.bincount(self.l2g.reshape(-1), minlength=self.n_global)
        return counts.astype(np.float64)

    def deform(self, fn: DeformFn) -> "BoxMesh":
        """Return a smoothly deformed copy of the mesh.

        ``fn(x, y, z) -> (x', y', z')`` is applied to the nodal coordinate
        arrays.  The local-to-global map is unchanged (the topology is
        preserved); geometric factors must be recomputed by the caller.
        """
        x2, y2, z2 = fn(self.coords[0], self.coords[1], self.coords[2])
        new_coords = np.stack([x2, y2, z2], axis=0)
        if new_coords.shape != self.coords.shape:
            raise ValueError(
                f"deformation changed coordinate shape {self.coords.shape} "
                f"-> {new_coords.shape}"
            )
        return replace(self, coords=new_coords)


def flatten_local(a: NDArray[np.float64]) -> NDArray[np.float64]:
    """Flatten ``(E, nx, nx, nx)`` local arrays to ``(E, nx^3)`` with
    Listing 1's ordering ``ijk = i + j*nx + k*nx*nx`` (``i`` fastest)."""
    if a.ndim != 4:
        raise ValueError(f"expected (E, nx, nx, nx), got shape {a.shape}")
    return a.transpose(0, 3, 2, 1).reshape(a.shape[0], -1)


def unflatten_local(a: NDArray[np.float64], nx: int) -> NDArray[np.float64]:
    """Inverse of :func:`flatten_local`."""
    if a.ndim != 2 or a.shape[1] != nx ** 3:
        raise ValueError(f"expected (E, {nx ** 3}), got shape {a.shape}")
    return a.reshape(a.shape[0], nx, nx, nx).transpose(0, 3, 2, 1)
