"""Lagrange interpolation on GLL nodes (the SEM nodal basis).

The paper's basis functions (its Eq. for ``l_i``) are the Lagrange cardinal
polynomials through the GLL points.  We provide stable barycentric
evaluation, the interpolation matrix between point sets, and cardinality
checks used by the test-suite.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray


def barycentric_weights(nodes: ArrayLike) -> NDArray[np.float64]:
    """Barycentric weights ``w_j = 1 / prod_{k != j} (x_j - x_k)``.

    Scaled by the maximum magnitude to avoid overflow for large node
    counts; the scaling cancels in all barycentric formulas.
    """
    x = np.asarray(nodes, dtype=np.float64)
    if x.ndim != 1 or x.size < 2:
        raise ValueError("nodes must be a 1-D array with at least 2 entries")
    diff = x[:, None] - x[None, :]
    np.fill_diagonal(diff, 1.0)
    # Guard against duplicate nodes.
    if np.min(np.abs(diff + np.eye(x.size))) == 0.0:
        raise ValueError("nodes must be distinct")
    w = 1.0 / np.prod(diff, axis=1)
    return w / np.max(np.abs(w))


def lagrange_basis_matrix(nodes: ArrayLike, x: ArrayLike) -> NDArray[np.float64]:
    """Matrix ``B[m, j] = l_j(x_m)`` of all cardinal functions at points ``x``.

    ``B @ f_nodes`` interpolates nodal values ``f_nodes`` to ``x``.  Rows
    corresponding to evaluation points that coincide with a node are exact
    unit vectors (cardinality), handled without division by zero.
    """
    xn = np.asarray(nodes, dtype=np.float64)
    xe = np.atleast_1d(np.asarray(x, dtype=np.float64))
    w = barycentric_weights(xn)
    diff = xe[:, None] - xn[None, :]
    exact = diff == 0.0
    safe = np.where(exact, 1.0, diff)
    terms = w[None, :] / safe
    denom = terms.sum(axis=1)
    b = terms / denom[:, None]
    hit = exact.any(axis=1)
    if np.any(hit):
        b[hit] = 0.0
        rows, cols = np.nonzero(exact)
        b[rows, cols] = 1.0
    return b


def interpolate(nodes: ArrayLike, values: ArrayLike, x: ArrayLike) -> NDArray[np.float64]:
    """Evaluate the interpolant through ``(nodes, values)`` at ``x``."""
    b = lagrange_basis_matrix(nodes, x)
    v = np.asarray(values, dtype=np.float64)
    if v.shape[0] != b.shape[1]:
        raise ValueError(
            f"values has leading dim {v.shape[0]}, expected {b.shape[1]}"
        )
    return b @ v


def interpolation_matrix(from_nodes: ArrayLike, to_nodes: ArrayLike) -> NDArray[np.float64]:
    """Interpolation operator from one nodal set to another.

    Used e.g. to build the paper's §III-E *padding* transform, which embeds
    an ``N+1``-point element into a larger ``N2+1``-point kernel.
    """
    return lagrange_basis_matrix(from_nodes, to_nodes)
