"""Named ``Ax`` kernel registry + the BLAS-backed sum-factorization kernel.

The paper's premise is that the matrix-free ``Ax`` dominates SEM solver
time; this module makes the CPU-side hot path as fast as the hardware
model assumes and gives every caller a single way to pick an
implementation by name:

* :func:`ax_local_matmul` — sum factorization recast as stacked
  ``(nx, nx) @ (nx, nx^2)`` matrix products via reshapes, so all three
  derivative phases hit BLAS ``dgemm`` (≈2.5x the einsum kernel at the
  paper's headline ``N = 7`` with a warm workspace).
* the registry — :func:`get_ax_kernel`, :func:`register_ax_kernel`,
  :func:`available_ax_kernels`, :func:`resolve_ax_backend` — through
  which :class:`~repro.sem.poisson.PoissonProblem`,
  :class:`~repro.core.accel.SEMAccelerator`, the examples and the
  benchmarks select ``"einsum" | "matmul" | "listing1" | "dense"``.

Every registered kernel has the uniform signature
``kernel(ref, u, g, out=None, workspace=None)``; ``workspace`` is a
:class:`~repro.sem.workspace.SolverWorkspace` whose scratch buffers make
the call allocation-free after warm-up.
"""

from __future__ import annotations

import inspect
from typing import Callable

import numpy as np
from numpy.typing import NDArray

from repro.sem.element import ReferenceElement
from repro.sem.operators import (
    _check_shapes,
    ax_local,
    ax_local_dense,
    ax_local_listing1,
)
from repro.sem.workspace import SolverWorkspace

#: Uniform kernel signature: ``(ref, u, g, out=None, workspace=None)``.
AxKernel = Callable[..., NDArray[np.float64]]

#: Cache-blocking target: elements are processed in chunks of roughly
#: this many DOFs so the gradient/flux work arrays stay resident in the
#: last-level cache between the three phases (measured optimum on the
#: benchmark host; the exact value is not critical within ~2x).
BLOCK_DOFS: int = 16384


def ax_local_matmul(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    out: NDArray[np.float64] | None = None,
    workspace: SolverWorkspace | None = None,
) -> NDArray[np.float64]:
    """``w = D^T G D u`` with every derivative phase as a BLAS ``dgemm``.

    The three reference-space derivatives are stacked matrix products on
    contiguous views of ``u`` (no copies):

    * ``ur``: ``D @ u.reshape(E, nx, nx^2)`` — one ``(nx, nx^2)`` GEMM
      per element, batched by ``np.matmul``;
    * ``us``: ``D @ u`` over the last two axes (``E*nx`` stacked GEMMs);
    * ``ut``: ``u @ D^T`` over the last two axes.

    The transposed phase mirrors them with ``D^T``, and the geometric
    tensor is applied with in-place elementwise ufuncs through one
    scratch buffer.  Elements are processed in cache-sized blocks
    (:data:`BLOCK_DOFS`) so the six work arrays of a block stay hot
    across all three phases — the software analogue of the paper's
    on-chip buffer reuse.  A warm call with ``workspace`` performs
    **zero** field-sized heap allocations.

    Parameters
    ----------
    ref, u, g:
        As :func:`repro.sem.operators.ax_local`.
    out:
        Optional preallocated result array ``(E, nx, nx, nx)``.
    workspace:
        Optional :class:`~repro.sem.workspace.SolverWorkspace` providing
        the seven scratch fields; sized for ``(E, nx)``.
    """
    _check_shapes(ref, u, g)
    d = ref.deriv
    dt = d.T
    num_e, nx = u.shape[0], ref.n_points
    if not u.flags.c_contiguous:
        u = np.ascontiguousarray(u)  # the reshape views below need it
    block = max(1, min(num_e, BLOCK_DOFS // nx ** 3))
    if workspace is not None:
        workspace.require_local(num_e, nx)
        bufs = (workspace.ur, workspace.us, workspace.ut,
                workspace.wr, workspace.ws, workspace.wt, workspace.tmp)
    else:
        shape = (block, nx, nx, nx)
        bufs = tuple(np.empty(shape) for _ in range(7))
    if out is None:
        out = np.empty_like(u)
    # A non-contiguous ``out`` cannot serve as a matmul/reshape target;
    # compute into a contiguous result and copy once at the end.
    result = out if out.flags.c_contiguous else np.empty_like(u)

    for start in range(0, num_e, block):
        e = min(start + block, num_e) - start
        ub = u[start:start + e]
        gb = g[start:start + e]
        ob = result[start:start + e]
        ur, us, ut, wr, ws, wt, tmp = (buf[:e] for buf in bufs)

        # Phase 1: reference-space gradient, dgemm-backed contractions.
        # The r- and t-contractions collapse to single large GEMMs
        # ((nx, nx) against a tall-skinny reshape); only the middle axis
        # needs numpy's stacked-matmul batching.
        np.matmul(d, ub.reshape(e, nx, nx * nx),
                  out=ur.reshape(e, nx, nx * nx))
        np.matmul(d, ub, out=us)
        np.matmul(ub.reshape(e * nx * nx, nx), dt,
                  out=ut.reshape(e * nx * nx, nx))

        # Phase 2: symmetric geometric tensor, in place via one scratch.
        g0, g1, g2, g3, g4, g5 = (gb[:, c] for c in range(6))
        np.multiply(g0, ur, out=wr)
        np.multiply(g1, us, out=tmp)
        wr += tmp
        np.multiply(g2, ut, out=tmp)
        wr += tmp
        np.multiply(g1, ur, out=ws)
        np.multiply(g3, us, out=tmp)
        ws += tmp
        np.multiply(g4, ut, out=tmp)
        ws += tmp
        np.multiply(g2, ur, out=wt)
        np.multiply(g4, us, out=tmp)
        wt += tmp
        np.multiply(g5, ut, out=tmp)
        wt += tmp

        # Phase 3: transposed derivative, accumulated into the output.
        np.matmul(dt, wr.reshape(e, nx, nx * nx),
                  out=ob.reshape(e, nx, nx * nx))
        np.matmul(dt, ws, out=tmp)
        ob += tmp
        np.matmul(wt.reshape(e * nx * nx, nx), d,
                  out=tmp.reshape(e * nx * nx, nx))
        ob += tmp

    if result is not out:
        np.copyto(out, result)
    return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _ax_listing1(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    out: NDArray[np.float64] | None = None,
    workspace: SolverWorkspace | None = None,
) -> NDArray[np.float64]:
    """Registry adapter for the scalar Listing-1 reference kernel."""
    w = ax_local_listing1(ref, u, g)
    if out is not None:
        np.copyto(out, w)
        return out
    return w


def _ax_dense(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    out: NDArray[np.float64] | None = None,
    workspace: SolverWorkspace | None = None,
) -> NDArray[np.float64]:
    """Registry adapter for the densely assembled verification kernel."""
    w = ax_local_dense(ref, u, g)
    if out is not None:
        np.copyto(out, w)
        return out
    return w


_REGISTRY: dict[str, AxKernel] = {
    "einsum": ax_local,
    "matmul": ax_local_matmul,
    "listing1": _ax_listing1,
    "dense": _ax_dense,
}

#: The library's default hot-path kernel name.
DEFAULT_AX_KERNEL: str = "einsum"


def available_ax_kernels() -> tuple[str, ...]:
    """Names currently registered, in registration order."""
    return tuple(_REGISTRY)


def get_ax_kernel(name: str) -> AxKernel:
    """Look up an ``Ax`` implementation by name.

    Raises
    ------
    KeyError
        For unknown names, listing the registered alternatives.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown ax kernel {name!r}; "
            f"available: {', '.join(_REGISTRY)}"
        ) from None


def register_ax_kernel(
    name: str, kernel: AxKernel, overwrite: bool = False
) -> None:
    """Register a custom kernel under ``name``.

    The kernel must follow the uniform signature
    ``kernel(ref, u, g, out=None, workspace=None)`` (extra capabilities
    are probed with :func:`accepts_keyword`, so a plain
    ``kernel(ref, u, g)`` callable also works — it just opts out of the
    allocation-free path).
    """
    if not name:
        raise ValueError("kernel name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"ax kernel {name!r} already registered")
    if not callable(kernel):
        raise TypeError(f"kernel must be callable, got {type(kernel)!r}")
    _REGISTRY[name] = kernel


def resolve_ax_backend(spec: "str | AxKernel") -> AxKernel:
    """Turn a kernel name or callable into a callable backend."""
    if isinstance(spec, str):
        return get_ax_kernel(spec)
    if not callable(spec):
        raise TypeError(
            f"ax backend must be a kernel name or callable, got {spec!r}"
        )
    return spec


def accepts_keyword(fn: Callable, name: str) -> bool:
    """True if ``fn`` can be called with keyword argument ``name``.

    Used to probe backends for ``out=``/``workspace=`` support so plain
    ``(ref, u, g)`` callables (e.g. the accelerator adapter) keep
    working through the same dispatch sites.
    """
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins without introspection
        return False
    if name in params:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
