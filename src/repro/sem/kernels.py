"""Named ``Ax`` kernel registry + the BLAS-backed sum-factorization kernel.

The paper's premise is that the matrix-free ``Ax`` dominates SEM solver
time; this module makes the CPU-side hot path as fast as the hardware
model assumes and gives every caller a single way to pick an
implementation by name:

* :func:`ax_local_matmul` — sum factorization recast as stacked
  ``(nx, nx) @ (nx, nx^2)`` matrix products via reshapes, so all three
  derivative phases hit BLAS ``dgemm`` (≈2.5x the einsum kernel at the
  paper's headline ``N = 7`` with a warm workspace).  Elements are
  processed in cache-sized blocks that can be dispatched across a
  persistent thread pool (``threads=``) — BLAS and large-array ufuncs
  release the GIL, and each block owns disjoint output/scratch rows, so
  the threaded result is bit-identical to the sequential one.  A stacked
  ``(B, E, nx, nx, nx)`` input runs all ``B`` systems through each
  element block while its geometry is hot (the multi-RHS serving path).
* the registry — :func:`get_ax_kernel`, :func:`register_ax_kernel`,
  :func:`available_ax_kernels`, :func:`resolve_ax_backend` — through
  which :class:`~repro.sem.poisson.PoissonProblem`,
  :class:`~repro.core.accel.SEMAccelerator`, the examples and the
  benchmarks select ``"einsum" | "matmul" | "listing1" | "dense"``.

Every registered kernel has the uniform signature
``kernel(ref, u, g, out=None, workspace=None)``; ``workspace`` is a
:class:`~repro.sem.workspace.SolverWorkspace` whose scratch buffers make
the call allocation-free after warm-up.  Kernels may additionally accept
``threads=`` (probed with :func:`accepts_keyword`, like ``out=``).
"""

from __future__ import annotations

import functools
import inspect
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np
from numpy.typing import NDArray

from repro.analysis.annotations import hot_path
from repro.sem.element import ReferenceElement
from repro.sem.operators import (
    _check_shapes,
    ax_local,
    ax_local_dense,
    ax_local_listing1,
)
from repro.sem.workspace import FUSED_BATCH_DOFS, SolverWorkspace

#: Uniform kernel signature: ``(ref, u, g, out=None, workspace=None)``.
AxKernel = Callable[..., NDArray[np.float64]]

#: Cache-blocking target: elements are processed in chunks of roughly
#: this many DOFs so the gradient/flux work arrays stay resident in the
#: last-level cache between the three phases (measured optimum on the
#: benchmark host; the exact value is not critical within ~2x).
BLOCK_DOFS: int = 16384


def _middle_axis_single_gemm(nx: int, itemsize: int) -> bool:
    """Whether the middle-axis derivative runs as one reshaped GEMM.

    The s-derivative is the one axis whose contraction index is neither
    leading nor trailing, so the plain spelling is ``rows * nx`` stacked
    ``(nx, nx) @ (nx, nx)`` products — dispatch-bound at small ``nx``.
    Contracting against ``kron(D, I)`` instead folds the whole field
    into a single ``(rows * nx, nx^2) @ (nx^2, nx^2)`` GEMM on
    contiguous views (no transposes, no extra passes) at the price of
    ``nx``-fold more FLOPs, the extras being exact multiplies by zero.

    Measured on the bench host, the single GEMM wins up to ``nx = 4``
    in fp64 (1.4–4x) and ``nx = 5`` in fp32, and loses beyond (the
    stacked matmul is already bandwidth-saturated at ``N = 7``, where
    even a same-size single GEMM is slower); those are also exactly the
    contraction lengths (<= 25) OpenBLAS handles with one unblocked
    micro-kernel sweep, keeping per-row results bit-identical across
    row counts — which the fused-batch == per-system exact-equality
    contract relies on.
    """
    return nx <= (4 if itemsize == 8 else 5)


@functools.lru_cache(maxsize=64)
def _kron_middle_ops(
    d_bytes: bytes, nx: int, dtype_str: str
) -> tuple[NDArray, NDArray]:
    """``(kron(D^T, I), kron(D, I))`` for the single-GEMM middle axis.

    Keyed by the differentiation matrix's bytes (tiny — ``nx^2``
    floats), so every reference element / dtype pair builds its pair
    once.  The first factor serves the gradient phase
    (``us = u @ kron(D^T, I)`` row-wise), the second the transposed
    divergence phase.
    """
    d = np.frombuffer(d_bytes, dtype=dtype_str).reshape(nx, nx)
    eye = np.eye(nx, dtype=d.dtype)
    grad = np.ascontiguousarray(np.kron(d.T, eye))
    div = np.ascontiguousarray(np.kron(d, eye))
    grad.setflags(write=False)
    div.setflags(write=False)
    return grad, div


@functools.lru_cache(maxsize=None)
def _fallback_executor(threads: int) -> ThreadPoolExecutor:
    """Shared pool for threaded kernel calls without a workspace.

    Keyed by worker count and kept for the process lifetime (the key
    space is bounded by distinct thread counts, and an evicted executor
    would leak its idle workers), so ad-hoc
    ``ax_local_matmul(..., threads=k)`` calls don't pay pool startup;
    workspace-backed calls use the workspace's own persistent pool.
    """
    return ThreadPoolExecutor(max_workers=threads, thread_name_prefix="sem-ax")


@hot_path
def _ax_gradient_phase(
    d: NDArray[np.float64],
    dt: NDArray[np.float64],
    uf: NDArray[np.float64],
    ur: NDArray[np.float64],
    us: NDArray[np.float64],
    ut: NDArray[np.float64],
    r_shape: tuple[int, ...],
    t_shape: tuple[int, ...],
    kron_grad: NDArray | None = None,
    m_shape: tuple[int, ...] | None = None,
) -> None:
    """Phase 1: reference-space gradient, dgemm-backed contractions.

    The r- and t-contractions collapse to large GEMMs ((nx, nx) against
    a tall-skinny reshape); the middle axis runs as one reshaped
    ``kron(D^T, I)`` GEMM when ``kron_grad`` is given (small ``nx``,
    see :func:`_middle_axis_single_gemm`) and as numpy's stacked-matmul
    batching otherwise.  ``uf`` and the scratch are stacked
    ``(rows, nx, nx, nx)`` views (one block, or a whole folded batch).
    """
    np.matmul(d, uf.reshape(r_shape), out=ur.reshape(r_shape))
    if kron_grad is not None:
        np.matmul(uf.reshape(m_shape), kron_grad, out=us.reshape(m_shape))
    else:
        np.matmul(d, uf, out=us)
    np.matmul(uf.reshape(t_shape), dt, out=ut.reshape(t_shape))


@hot_path
def _ax_geometric_phase(
    gc: tuple[NDArray[np.float64], ...],
    ur: NDArray[np.float64],
    us: NDArray[np.float64],
    ut: NDArray[np.float64],
    wr: NDArray[np.float64],
    ws: NDArray[np.float64],
    wt: NDArray[np.float64],
    tmp: NDArray[np.float64],
) -> None:
    """Phase 2: symmetric geometric tensor, in place via one scratch.

    ``gc`` holds the six components ``(rr, rs, rt, ss, st, tt)``; each
    must broadcast against the gradient arrays (equal shapes for the
    per-system sweep, an extra leading batch axis on ``ur``/... for the
    fused sweep).  With the SoA layout every component is contiguous.
    """
    g0, g1, g2, g3, g4, g5 = gc
    np.multiply(g0, ur, out=wr)
    np.multiply(g1, us, out=tmp)
    wr += tmp
    np.multiply(g2, ut, out=tmp)
    wr += tmp
    np.multiply(g1, ur, out=ws)
    np.multiply(g3, us, out=tmp)
    ws += tmp
    np.multiply(g4, ut, out=tmp)
    ws += tmp
    np.multiply(g2, ur, out=wt)
    np.multiply(g4, us, out=tmp)
    wt += tmp
    np.multiply(g5, ut, out=tmp)
    wt += tmp


@hot_path
def _ax_divergence_phase(
    d: NDArray[np.float64],
    dt: NDArray[np.float64],
    of: NDArray[np.float64],
    wr: NDArray[np.float64],
    ws: NDArray[np.float64],
    wt: NDArray[np.float64],
    tmp: NDArray[np.float64],
    r_shape: tuple[int, ...],
    t_shape: tuple[int, ...],
    kron_div: NDArray | None = None,
    m_shape: tuple[int, ...] | None = None,
) -> None:
    """Phase 3: transposed derivative, accumulated into the output."""
    np.matmul(dt, wr.reshape(r_shape), out=of.reshape(r_shape))
    if kron_div is not None:
        np.matmul(ws.reshape(m_shape), kron_div, out=tmp.reshape(m_shape))
    else:
        np.matmul(dt, ws, out=tmp)
    of += tmp
    np.matmul(wt.reshape(t_shape), d, out=tmp.reshape(t_shape))
    of += tmp


@hot_path
def _ax_matmul_block(
    d: NDArray[np.float64],
    dt: NDArray[np.float64],
    ub: NDArray[np.float64],
    gb: NDArray[np.float64],
    ob: NDArray[np.float64],
    bufs: tuple[NDArray[np.float64], ...],
) -> None:
    """``w = D^T G D u`` on one element block (all phases, dgemm-backed).

    ``ub``/``ob`` are contiguous ``(e, nx, nx, nx)`` slices of one
    system; ``gb`` is the block's ``(e, 6, nx, nx, nx)`` geometry.  All
    seven scratch arrays in ``bufs`` match ``ub``'s shape.  Everything
    is a view: blocks own disjoint rows, so concurrent calls are safe.
    """
    nx = d.shape[0]
    ur, us, ut, wr, ws, wt, tmp = bufs
    e = ub.shape[0]
    r_shape = (e, nx, nx * nx)
    t_shape = (e * nx * nx, nx)
    m_shape = (e * nx, nx * nx)
    kron_grad = kron_div = None
    if _middle_axis_single_gemm(nx, d.itemsize):
        kron_grad, kron_div = _kron_middle_ops(
            d.tobytes(), nx, d.dtype.str
        )
    _ax_gradient_phase(
        d, dt, ub, ur, us, ut, r_shape, t_shape, kron_grad, m_shape
    )
    _ax_geometric_phase(
        tuple(gb[:, c] for c in range(6)), ur, us, ut, wr, ws, wt, tmp
    )
    _ax_divergence_phase(
        d, dt, ob, wr, ws, wt, tmp, r_shape, t_shape, kron_div, m_shape
    )


@hot_path
def _ax_matmul_fused_batch(
    d: NDArray[np.float64],
    dt: NDArray[np.float64],
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    result: NDArray[np.float64],
    bufs: tuple[NDArray[np.float64], ...],
) -> None:
    """All-systems fused sweep for small stacked blocks.

    ``u``/``result`` are contiguous ``(B, E, nx, nx, nx)``; the GEMM
    phases fold ``(B, E)`` into one stacked-matmul axis (identical
    per-element dgemms, ~B× fewer dispatches) and the geometric phase
    broadcasts each ``(E, ...)`` component across the batch axis.  Only
    used when the whole block fits the cache budget
    (:data:`~repro.sem.workspace.FUSED_BATCH_DOFS`); results are
    bit-identical to the per-system sweep.
    """
    nx = d.shape[0]
    nb, e = u.shape[0], u.shape[1]
    fold = (nb * e, nx, nx, nx)
    uf, rf = u.reshape(fold), result.reshape(fold)
    ur, us, ut, wr, ws, wt, tmp = (buf.reshape(fold) for buf in bufs)
    r_shape = (nb * e, nx, nx * nx)
    t_shape = (nb * e * nx * nx, nx)
    m_shape = (nb * e * nx, nx * nx)
    kron_grad = kron_div = None
    if _middle_axis_single_gemm(nx, d.itemsize):
        kron_grad, kron_div = _kron_middle_ops(
            d.tobytes(), nx, d.dtype.str
        )
    _ax_gradient_phase(
        d, dt, uf, ur, us, ut, r_shape, t_shape, kron_grad, m_shape
    )
    bshape = (nb, e) + (nx,) * 3
    _ax_geometric_phase(
        tuple(g[:, c] for c in range(6)),
        *(x.reshape(bshape) for x in (ur, us, ut, wr, ws, wt, tmp)),
    )
    _ax_divergence_phase(
        d, dt, rf, wr, ws, wt, tmp, r_shape, t_shape, kron_div, m_shape
    )


def ax_local_matmul(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    out: NDArray[np.float64] | None = None,
    workspace: SolverWorkspace | None = None,
    threads: int | None = None,
) -> NDArray[np.float64]:
    """``w = D^T G D u`` with every derivative phase as a BLAS ``dgemm``.

    The three reference-space derivatives are stacked matrix products on
    contiguous views of ``u`` (no copies):

    * ``ur``: ``D @ u.reshape(E, nx, nx^2)`` — one ``(nx, nx^2)`` GEMM
      per element, batched by ``np.matmul``;
    * ``us``: ``D @ u`` over the last two axes (``E*nx`` stacked GEMMs);
    * ``ut``: ``u @ D^T`` over the last two axes.

    The transposed phase mirrors them with ``D^T``, and the geometric
    tensor is applied with in-place elementwise ufuncs through one
    scratch buffer.  Elements are processed in cache-sized blocks
    (:data:`BLOCK_DOFS`) so the six work arrays of a block stay hot
    across all three phases — the software analogue of the paper's
    on-chip buffer reuse.  A warm call with ``workspace`` performs
    **zero** field-sized heap allocations.

    Parameters
    ----------
    ref, u, g:
        As :func:`repro.sem.operators.ax_local`; ``u`` may also be a
        stacked multi-system block ``(B, E, nx, nx, nx)`` sharing one
        geometry, in which case each element block sweeps all ``B``
        systems while its geometric factors and scratch stay
        cache-resident — per-system results are bit-identical to ``B``
        separate calls.
    out:
        Optional preallocated result array, same shape as ``u``.
    workspace:
        Optional :class:`~repro.sem.workspace.SolverWorkspace` providing
        the seven scratch fields; sized for ``(E, nx)`` (and the batch
        size for stacked inputs).
    threads:
        Element-block worker threads.  ``None`` (default) follows the
        workspace's ``threads`` setting (``1`` without a workspace);
        ``k > 1`` dispatches blocks onto a persistent pool — the
        workspace's own, or a shared module-level one.  Blocks write
        disjoint rows, so the result is bit-identical to ``threads=1``.
    """
    _check_shapes(ref, u, g)
    # Match D to the field dtype (fp32 inputs contract against the
    # cached fp32 D — never a silent promotion to fp64 mid-kernel).
    d = ref.deriv_as(u.dtype)
    dt = d.T
    batched = u.ndim == 5
    num_b = u.shape[0] if batched else 1
    num_e, nx = u.shape[-4], ref.n_points
    if threads is None:
        threads = workspace.threads if workspace is not None else 1
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if not u.flags.c_contiguous:
        u = np.ascontiguousarray(u)  # the reshape views below need it
    # Block sizing is per system: a batched input sweeps its systems one
    # at a time inside each element block, so the cache-resident work
    # set (scratch + geometry slice) never grows with B.
    block = max(1, min(num_e, BLOCK_DOFS // nx ** 3))
    if workspace is not None and workspace.ur.dtype == u.dtype:
        workspace.require_local(num_e, nx)
        ws_bufs = (workspace.ur, workspace.us, workspace.ut,
                   workspace.wr, workspace.ws, workspace.wt, workspace.tmp)
    else:
        # No workspace — or one whose buffers hold the other precision
        # (mixed solves keep separate fp32 workspaces; a stray mismatch
        # falls back to fresh scratch rather than corrupting GEMM
        # ``out=`` targets).
        ws_bufs = None
    if out is None:
        out = np.empty_like(u)
    # A non-contiguous ``out`` cannot serve as a matmul/reshape target;
    # compute into a contiguous result and copy once at the end.
    result = out if out.flags.c_contiguous else np.empty_like(u)

    if batched and num_b * num_e * nx ** 3 <= FUSED_BATCH_DOFS:
        # Small stacked blocks are dispatch-bound, not bandwidth-bound:
        # fuse all systems into single GEMM/ufunc sweeps.
        rows = num_b * num_e
        if (
            ws_bufs is not None
            and ws_bufs[0].shape[0] >= rows
            and ws_bufs[0].dtype == u.dtype
        ):
            bufs = tuple(buf[:rows] for buf in ws_bufs)
        else:
            bufs = tuple(
                np.empty((rows, nx, nx, nx), dtype=u.dtype)
                for _ in range(7)
            )
        _ax_matmul_fused_batch(d, dt, u, g, result, bufs)
        if result is not out:
            np.copyto(out, result)
        return out

    def run_block(
        start: int, scratch: tuple[NDArray[np.float64], ...] | None
    ) -> None:
        stop = min(start + block, num_e)
        e = stop - start
        if scratch is None:
            # Threaded call without a workspace: each task owns fresh
            # block scratch, keeping tasks data-independent.
            bufs = tuple(
                np.empty((e, nx, nx, nx), dtype=u.dtype) for _ in range(7)
            )
        elif scratch is ws_bufs:
            # Workspace buffers are full-size: slice the block's own
            # rows so concurrent blocks never share scratch.
            bufs = tuple(buf[start:stop] for buf in scratch)
        else:
            # Sequential reusable scratch, sized for one block.
            bufs = tuple(buf[:e] for buf in scratch)
        gb = g[start:stop]
        if batched:
            # The multi-RHS sweep: the block's geometry and scratch stay
            # hot while every system streams through, and each system
            # runs the exact op sequence of an unbatched call.
            for b in range(num_b):
                _ax_matmul_block(
                    d, dt, u[b, start:stop], gb, result[b, start:stop], bufs
                )
        else:
            _ax_matmul_block(d, dt, u[start:stop], gb, result[start:stop], bufs)

    starts = range(0, num_e, block)
    if threads > 1 and len(starts) > 1:
        pool = (
            workspace.executor
            if workspace is not None and workspace.executor is not None
            else _fallback_executor(threads)
        )
        list(pool.map(lambda s: run_block(s, ws_bufs), starts))
    else:
        scratch = ws_bufs
        if scratch is None:
            scratch = tuple(
                np.empty((block, nx, nx, nx), dtype=u.dtype)
                for _ in range(7)
            )
        for start in starts:
            run_block(start, scratch)

    if result is not out:
        np.copyto(out, result)
    return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _batched_rows(
    kernel: Callable[..., NDArray[np.float64]],
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    out: NDArray[np.float64] | None,
) -> NDArray[np.float64]:
    """Run an unbatched reference kernel over each system of a block."""
    if out is None:
        out = np.empty_like(u)
    for b in range(u.shape[0]):
        np.copyto(out[b], kernel(ref, u[b], g))
    return out


def _ax_listing1(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    out: NDArray[np.float64] | None = None,
    workspace: SolverWorkspace | None = None,
) -> NDArray[np.float64]:
    """Registry adapter for the scalar Listing-1 reference kernel."""
    if u.ndim == 5:
        return _batched_rows(ax_local_listing1, ref, u, g, out)
    w = ax_local_listing1(ref, u, g)
    if out is not None:
        np.copyto(out, w)
        return out
    return w


def _ax_dense(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    out: NDArray[np.float64] | None = None,
    workspace: SolverWorkspace | None = None,
) -> NDArray[np.float64]:
    """Registry adapter for the densely assembled verification kernel."""
    if u.ndim == 5:
        return _batched_rows(ax_local_dense, ref, u, g, out)
    w = ax_local_dense(ref, u, g)
    if out is not None:
        np.copyto(out, w)
        return out
    return w


_REGISTRY: dict[str, AxKernel] = {
    "einsum": ax_local,
    "matmul": ax_local_matmul,
    "listing1": _ax_listing1,
    "dense": _ax_dense,
}

#: The library's default hot-path kernel name.
DEFAULT_AX_KERNEL: str = "einsum"


def available_ax_kernels() -> tuple[str, ...]:
    """Names currently registered, in registration order."""
    return tuple(_REGISTRY)


def get_ax_kernel(name: str) -> AxKernel:
    """Look up an ``Ax`` implementation by name.

    Raises
    ------
    KeyError
        For unknown names, listing the registered alternatives.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown ax kernel {name!r}; "
            f"available: {', '.join(_REGISTRY)}"
        ) from None


def register_ax_kernel(
    name: str, kernel: AxKernel, overwrite: bool = False
) -> None:
    """Register a custom kernel under ``name``.

    The kernel must follow the uniform signature
    ``kernel(ref, u, g, out=None, workspace=None)`` (extra capabilities
    are probed with :func:`accepts_keyword`, so a plain
    ``kernel(ref, u, g)`` callable also works — it just opts out of the
    allocation-free path).
    """
    if not name:
        raise ValueError("kernel name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"ax kernel {name!r} already registered")
    if not callable(kernel):
        raise TypeError(f"kernel must be callable, got {type(kernel)!r}")
    _REGISTRY[name] = kernel


def ax_kernel_name(kernel: AxKernel) -> "str | None":
    """The registry name of a kernel callable, or ``None`` if unregistered.

    The inverse of :func:`get_ax_kernel`, used where a backend must be
    *serialized by name* rather than by reference — the picklable
    :class:`~repro.sem.spec.ProblemSpec` a worker process rebuilds its
    problem from stores the name, so the worker resolves the identical
    registered kernel instead of pickling a closure.
    """
    for name, registered in _REGISTRY.items():
        if registered is kernel:
            return name
    return None


def resolve_ax_backend(spec: "str | AxKernel") -> AxKernel:
    """Turn a kernel name or callable into a callable backend."""
    if isinstance(spec, str):
        return get_ax_kernel(spec)
    if not callable(spec):
        raise TypeError(
            f"ax backend must be a kernel name or callable, got {spec!r}"
        )
    return spec


@functools.lru_cache(maxsize=512)
def _accepts_keyword_cached(fn: Callable, name: str) -> bool:
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins without introspection
        return False
    if name in params:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def accepts_keyword(fn: Callable, name: str) -> bool:
    """True if ``fn`` can be called with keyword argument ``name``.

    Used to probe backends for ``out=``/``workspace=``/``threads=``
    support so plain ``(ref, u, g)`` callables (e.g. the accelerator
    adapter) keep working through the same dispatch sites.  Probes are
    memoized (``signature`` reflection is slow relative to a short
    solve); bound methods are probed through their underlying function
    so the cache never pins the bound instance (e.g. a whole
    ``PoissonProblem`` behind ``prob.apply_A``), and unhashable
    callables fall back to direct inspection.
    """
    # Keyword acceptance is identical for a bound method and its
    # underlying function (binding only consumes the first positional).
    fn = getattr(fn, "__func__", fn)
    try:
        return _accepts_keyword_cached(fn, name)
    except TypeError:
        return _accepts_keyword_cached.__wrapped__(fn, name)
