"""Preallocated solver workspaces for the allocation-free hot path.

The paper's FPGA datapath wins by streaming DOFs through fixed on-chip
buffers with zero redundant memory traffic; the CPU baseline should play
by the same rules.  :class:`SolverWorkspace` preallocates every
per-iteration temporary the solver stack needs for a fixed ``(E, nx)``
local shape and global DOF count:

* the six sum-factorization work arrays (``ur/us/ut``, ``wr/ws/wt``)
  plus one elementwise scratch used by the ``Ax`` kernels
  (:mod:`repro.sem.kernels`),
* local scatter/gather buffers used by
  :meth:`repro.sem.poisson.PoissonProblem.apply_A`,
* the CG vectors (``x``, ``r``, ``z``, ``p``, ``ap`` and an axpy
  scratch) consumed by :func:`repro.sem.cg.cg_solve`.

Two serving knobs extend the workspace beyond one solve at a time:

* ``threads`` — the workspace owns a persistent
  :class:`~concurrent.futures.ThreadPoolExecutor` that the blocked
  kernels dispatch element blocks onto.  BLAS ``dgemm`` and numpy's
  large-array ufuncs release the GIL, so threads (not processes) give
  real parallelism, and each block writes disjoint output/scratch rows
  so the result is bit-identical to the sequential path.
* ``batch`` — sizes every buffer with a leading ``(B, ...)`` system
  dimension so one warm workspace carries ``B`` independent right-hand
  sides through :func:`repro.sem.cg.cg_solve_batched`, amortizing the
  geometry traffic across all of them.

One workspace serves one (possibly batched) solve at a time — buffers
are reused across calls, so concurrent *solves* must not share a
workspace (the internal element-block threads are safe because they own
disjoint rows).  After a warm-up call every kernel and CG iteration runs
without any field-sized heap allocation — verified by the
``tracemalloc`` regression tests in ``tests/sem/test_workspace.py``.

A threaded workspace owns real OS threads, so it supports deterministic
teardown three ways: ``with SolverWorkspace(...) as ws:`` (the pool is
shut down on block exit), an explicit :meth:`SolverWorkspace.shutdown`,
and — as a safety net for pooled workspaces dropped without either — a
``weakref.finalize`` that stops the workers when the workspace is
garbage collected.
"""

from __future__ import annotations

import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from repro.sem.mesh import BoxMesh


def _shutdown_pool(pool: ThreadPoolExecutor) -> None:
    """Finalizer target: must not hold a reference back to the workspace.

    ``wait=False`` because a GC-triggered finalizer may run from an
    arbitrary thread; the workers exit as soon as their queue drains.
    """
    pool.shutdown(wait=False)

#: Kernel scratch names, shaped ``(scratch_rows, nx, nx, nx)``: for
#: large batched problems the blocked ``Ax`` kernels sweep one system's
#: element block at a time (geometry stays cache-hot across the batch),
#: so the scratch keeps single-system row count; only small batched
#: problems (``batch * E * nx^3 <= FUSED_BATCH_DOFS``) size it
#: ``batch * E`` so the fused all-systems GEMM path has room.
KERNEL_SCRATCH_BUFFERS: tuple[str, ...] = (
    "ur", "us", "ut", "wr", "ws", "wt", "tmp",
)

#: Largest stacked-block DOF count (``batch * E * nx^3``) for which the
#: batched kernels fuse all systems into single GEMM/ufunc sweeps (and
#: the workspace allocates full-batch scratch).  Beyond it, fusing would
#: blow the cache and the memory budget; the kernels fall back to the
#: per-system element-block sweep.
FUSED_BATCH_DOFS: int = 32768

#: Local field buffer names, shaped ``(E, nx, nx, nx)`` for
#: ``batch == 1`` and ``(batch, E, nx, nx, nx)`` otherwise.
LOCAL_FIELD_BUFFERS: tuple[str, ...] = ("u_local", "w_local")

#: All local (element-space) buffer names.
LOCAL_BUFFERS: tuple[str, ...] = KERNEL_SCRATCH_BUFFERS + LOCAL_FIELD_BUFFERS

#: Global (assembled-space) buffer names, shaped ``(n_global,)`` for
#: ``batch == 1`` and ``(batch, n_global)`` otherwise.
GLOBAL_BUFFERS: tuple[str, ...] = (
    "cg_x", "cg_r", "cg_z", "cg_p", "cg_ap", "cg_tmp", "cg_invm", "g_tmp",
)

#: Per-system scalar buffers of the batched CG loop, shaped ``(batch,)``.
BATCH_SCALAR_BUFFERS: tuple[str, ...] = (
    "cg_rz", "cg_pap", "cg_alpha", "cg_beta", "cg_res", "cg_stop",
)


@dataclass
class SolverWorkspace:
    """Every per-iteration temporary of the SEM solver stack, preallocated.

    Parameters
    ----------
    num_elements:
        Element count ``E`` of the local fields.
    nx:
        GLL points per direction (``N + 1``).
    n_global:
        Global DOF count; ``0`` builds a kernel-only workspace (no CG /
        gather-scatter buffers).
    batch:
        Number of independent right-hand sides the buffers carry at
        once.  ``1`` (the default) keeps the historical unbatched
        shapes; ``B > 1`` prepends a system axis to the local field and
        global (CG) buffers for :func:`repro.sem.cg.cg_solve_batched`.
        The kernel scratch stays single-system — the blocked kernels
        sweep the batch one system at a time per element block, reusing
        the same cache-resident scratch and geometry.
    threads:
        Element-block worker threads for the blocked ``Ax`` kernels.
        ``1`` runs sequentially; ``k > 1`` lazily spins up a persistent
        pool reused across calls (see :attr:`executor`).
    dtype:
        Floating dtype of every float buffer (``np.float64`` or
        ``np.float32``).  The default keeps the historical fp64 shapes
        bit-identical; ``np.float32`` halves the workspace footprint
        and feeds the mixed-precision solve path
        (:func:`repro.sem.cg.cg_solve_mixed`).  ``cg_active`` stays
        bool and the ``(batch,)`` scalar reduction buffers stay fp64
        either way (inner products accumulate in fp64 on every path).

    Use :meth:`for_mesh` to size a workspace from a
    :class:`~repro.sem.mesh.BoxMesh` in one call.

    Thread safety
    -------------
    One workspace admits one (possibly batched) solve at a time — the
    buffers are reused in place across calls.  The *internal*
    element-block threads are safe (each block owns disjoint
    output/scratch rows); it is concurrent *solves* that must not share
    a workspace.  Give each concurrent solver its own workspace (the
    problems' ``clone()`` does exactly this) or serialize access
    through :class:`repro.serve.pool.WorkspacePool`.
    """

    num_elements: int
    nx: int
    n_global: int = 0
    batch: int = 1
    threads: int = 1
    dtype: "np.dtype | type" = np.float64

    ur: NDArray[np.float64] = field(init=False, repr=False)
    us: NDArray[np.float64] = field(init=False, repr=False)
    ut: NDArray[np.float64] = field(init=False, repr=False)
    wr: NDArray[np.float64] = field(init=False, repr=False)
    ws: NDArray[np.float64] = field(init=False, repr=False)
    wt: NDArray[np.float64] = field(init=False, repr=False)
    tmp: NDArray[np.float64] = field(init=False, repr=False)
    u_local: NDArray[np.float64] = field(init=False, repr=False)
    w_local: NDArray[np.float64] = field(init=False, repr=False)
    cg_x: NDArray[np.float64] = field(init=False, repr=False)
    cg_r: NDArray[np.float64] = field(init=False, repr=False)
    cg_z: NDArray[np.float64] = field(init=False, repr=False)
    cg_p: NDArray[np.float64] = field(init=False, repr=False)
    cg_ap: NDArray[np.float64] = field(init=False, repr=False)
    cg_tmp: NDArray[np.float64] = field(init=False, repr=False)
    cg_invm: NDArray[np.float64] = field(init=False, repr=False)
    g_tmp: NDArray[np.float64] = field(init=False, repr=False)
    cg_rz: NDArray[np.float64] = field(init=False, repr=False)
    cg_pap: NDArray[np.float64] = field(init=False, repr=False)
    cg_alpha: NDArray[np.float64] = field(init=False, repr=False)
    cg_beta: NDArray[np.float64] = field(init=False, repr=False)
    cg_res: NDArray[np.float64] = field(init=False, repr=False)
    cg_stop: NDArray[np.float64] = field(init=False, repr=False)
    cg_active: NDArray[np.bool_] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_elements < 1:
            raise ValueError(
                f"element count must be >= 1, got {self.num_elements}"
            )
        if self.nx < 2:
            raise ValueError(f"nx must be >= 2, got {self.nx}")
        if self.n_global < 0:
            raise ValueError(f"n_global must be >= 0, got {self.n_global}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        self.dtype = np.dtype(self.dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"dtype must be float64 or float32, got {self.dtype}"
            )
        scratch_rows = self.num_elements
        if (
            self.batch > 1
            and self.batch * self.num_elements * self.nx ** 3
            <= FUSED_BATCH_DOFS
        ):
            scratch_rows = self.batch * self.num_elements
        scratch_shape = (scratch_rows, self.nx, self.nx, self.nx)
        local_shape: tuple[int, ...] = (
            self.num_elements, self.nx, self.nx, self.nx
        )
        global_shape: tuple[int, ...] = (self.n_global,)
        if self.batch > 1:
            local_shape = (self.batch,) + local_shape
            global_shape = (self.batch,) + global_shape
        for name in KERNEL_SCRATCH_BUFFERS:
            setattr(self, name, np.empty(scratch_shape, dtype=self.dtype))
        for name in LOCAL_FIELD_BUFFERS:
            setattr(self, name, np.empty(local_shape, dtype=self.dtype))
        for name in GLOBAL_BUFFERS:
            setattr(self, name, np.empty(global_shape, dtype=self.dtype))
        # Scalar reduction targets stay fp64 regardless of the field
        # dtype: the CG inner products are always *accumulated* in fp64
        # (the mixed path drops field storage, never dot precision), and
        # at (batch,) size the bytes are irrelevant anyway.
        for name in BATCH_SCALAR_BUFFERS:
            setattr(self, name, np.empty(self.batch, dtype=np.float64))
        self.cg_active = np.empty(self.batch, dtype=bool)
        self._executor: ThreadPoolExecutor | None = None
        self._finalizer: weakref.finalize | None = None

    # ------------------------------------------------------------------
    @classmethod
    def for_mesh(
        cls,
        mesh: BoxMesh,
        batch: int = 1,
        threads: int = 1,
        dtype: "np.dtype | type" = np.float64,
    ) -> "SolverWorkspace":
        """Size a full workspace (kernel + CG buffers) from a mesh."""
        e, nx = mesh.l2g.shape[0], mesh.l2g.shape[1]
        return cls(
            num_elements=e, nx=nx, n_global=mesh.n_global,
            batch=batch, threads=threads, dtype=dtype,
        )

    @property
    def local_shape(self) -> tuple[int, ...]:
        """Shape the local buffers were sized for (batch axis if ``> 1``)."""
        shape = (self.num_elements, self.nx, self.nx, self.nx)
        return (self.batch,) + shape if self.batch > 1 else shape

    @property
    def nbytes(self) -> int:
        """Total bytes held by the workspace buffers (itemsize-aware:
        an fp32 workspace reports half the float footprint of its fp64
        twin; ``cg_active`` stays 1 byte per system)."""
        names = (
            KERNEL_SCRATCH_BUFFERS + LOCAL_FIELD_BUFFERS
            + GLOBAL_BUFFERS + BATCH_SCALAR_BUFFERS
        )
        return (
            sum(getattr(self, name).nbytes for name in names)
            + self.cg_active.nbytes
        )

    @property
    def executor(self) -> ThreadPoolExecutor | None:
        """The persistent element-block pool (``None`` when sequential).

        Created lazily on first use and reused across kernel calls /
        CG iterations, so the solver hot path never pays thread startup.
        """
        if self.threads <= 1:
            return None
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="sem-ax"
            )
            # The pool's worker threads would otherwise outlive a
            # workspace nobody remembered to shut down (each thread
            # pins its interpreter slot until exit); tie teardown to
            # this workspace's lifetime.
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._executor
            )
        return self._executor

    def shutdown(self) -> None:
        """Tear down the worker pool (idempotent; buffers stay valid).

        Also runs on ``with``-block exit (:meth:`__exit__`) and, as a
        last resort, from a ``weakref.finalize`` when the workspace is
        garbage collected.
        """
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "SolverWorkspace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def require_local(self, num_elements: int, nx: int) -> None:
        """Raise unless the local buffers match ``(num_elements, nx)``."""
        if (num_elements, nx) != (self.num_elements, self.nx):
            raise ValueError(
                f"workspace sized for (E={self.num_elements}, "
                f"nx={self.nx}), got fields with (E={num_elements}, "
                f"nx={nx})"
            )

    def require_global(self, n_global: int) -> None:
        """Raise unless the global buffers hold ``n_global`` entries."""
        if n_global != self.n_global:
            raise ValueError(
                f"workspace sized for {self.n_global} global DOFs, "
                f"got {n_global}"
            )

    def require_batch(self, batch: int) -> None:
        """Raise unless the buffers carry exactly ``batch`` systems."""
        if batch != self.batch:
            raise ValueError(
                f"workspace sized for batch={self.batch}, "
                f"got a block of {batch} systems"
            )


#: Reserved key under which each workspace cache stores its creation
#: lock (ints / ``(int, str)`` tuples are the workspace keys, so a str
#: can never collide).
_CACHE_LOCK_KEY: str = "__create_lock__"


def cached_batch_workspace(
    cache: "dict[object, SolverWorkspace]",
    mesh: BoxMesh,
    batch: int,
    threads: int,
    base: "SolverWorkspace",
    dtype: "np.dtype | type" = np.float64,
) -> "SolverWorkspace":
    """Shared per-problem cache of batched workspaces.

    Parameters
    ----------
    cache:
        The problem's private ``{batch: workspace}`` dict, mutated in
        place on a miss (a per-cache creation lock is also stashed in
        it, under a reserved non-``int`` key).
    mesh:
        Mesh the workspaces are sized for.
    batch:
        Requested stacked-system count.
    threads:
        Element-block worker threads every created workspace carries.
    base:
        The problem's own unbatched workspace, returned for
        ``batch == 1`` when its dtype matches ``dtype``.
    dtype:
        Floating dtype of the requested workspace.  fp64 keeps the
        historical plain-``int`` cache keys; other dtypes key on
        ``(batch, dtype.str)`` so fp64 and fp32 workspaces coexist in
        one cache without colliding.

    Returns
    -------
    SolverWorkspace
        Warm workspace for ``batch`` systems; sized once per distinct
        ``batch`` and reused, so repeated batched solves stay warm.
        Used by :class:`~repro.sem.poisson.PoissonProblem` and
        :class:`~repro.sem.helmholtz.HelmholtzProblem`.

    Notes
    -----
    Creation is guarded by a per-cache lock: two threads racing an
    unseen batch size through ``problem.batch_workspace(B)`` directly
    (the workspace pool serializes its own callers, bare problems
    don't) must materialize exactly *one* workspace — the losing
    duplicate of the old check-then-insert race stranded a thread-pool
    executor until ``weakref.finalize`` fired.  The lock covers only
    construction; *use* of the returned workspace is still the caller's
    to serialize (one solve per workspace at a time).
    """
    dtype = np.dtype(dtype)
    if batch == 1 and dtype == base.dtype:
        return base
    key: object = (
        batch if dtype == np.dtype(np.float64) else (batch, dtype.str)
    )
    ws = cache.get(key)
    if ws is not None:
        return ws
    lock = cache.get(_CACHE_LOCK_KEY)
    if lock is None:
        # setdefault is atomic under the GIL: every racer converges on
        # one lock even when the cache starts empty.
        lock = cache.setdefault(_CACHE_LOCK_KEY, threading.Lock())
    with lock:
        ws = cache.get(key)
        if ws is None:
            ws = SolverWorkspace.for_mesh(
                mesh, batch=batch, threads=threads, dtype=dtype
            )
            cache[key] = ws
    return ws
