"""Preallocated solver workspaces for the allocation-free hot path.

The paper's FPGA datapath wins by streaming DOFs through fixed on-chip
buffers with zero redundant memory traffic; the CPU baseline should play
by the same rules.  :class:`SolverWorkspace` preallocates every
per-iteration temporary the solver stack needs for a fixed ``(E, nx)``
local shape and global DOF count:

* the six sum-factorization work arrays (``ur/us/ut``, ``wr/ws/wt``)
  plus one elementwise scratch used by the ``Ax`` kernels
  (:mod:`repro.sem.kernels`),
* local scatter/gather buffers used by
  :meth:`repro.sem.poisson.PoissonProblem.apply_A`,
* the CG vectors (``x``, ``r``, ``z``, ``p``, ``ap`` and an axpy
  scratch) consumed by :func:`repro.sem.cg.cg_solve`.

One workspace serves one solve at a time (buffers are reused across
calls, so it is not thread-safe).  After a warm-up call every kernel and
CG iteration runs without any field-sized heap allocation — verified by
the ``tracemalloc`` regression test in ``tests/sem/test_workspace.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from repro.sem.mesh import BoxMesh

#: Local (element-space) buffer names, all shaped ``(E, nx, nx, nx)``.
LOCAL_BUFFERS: tuple[str, ...] = (
    "ur", "us", "ut", "wr", "ws", "wt", "tmp", "u_local", "w_local",
)

#: Global (assembled-space) buffer names, all shaped ``(n_global,)``.
GLOBAL_BUFFERS: tuple[str, ...] = (
    "cg_x", "cg_r", "cg_z", "cg_p", "cg_ap", "cg_tmp", "cg_invm", "g_tmp",
)


@dataclass
class SolverWorkspace:
    """Every per-iteration temporary of the SEM solver stack, preallocated.

    Parameters
    ----------
    num_elements:
        Element count ``E`` of the local fields.
    nx:
        GLL points per direction (``N + 1``).
    n_global:
        Global DOF count; ``0`` builds a kernel-only workspace (no CG /
        gather-scatter buffers).

    Use :meth:`for_mesh` to size a workspace from a
    :class:`~repro.sem.mesh.BoxMesh` in one call.
    """

    num_elements: int
    nx: int
    n_global: int = 0

    ur: NDArray[np.float64] = field(init=False, repr=False)
    us: NDArray[np.float64] = field(init=False, repr=False)
    ut: NDArray[np.float64] = field(init=False, repr=False)
    wr: NDArray[np.float64] = field(init=False, repr=False)
    ws: NDArray[np.float64] = field(init=False, repr=False)
    wt: NDArray[np.float64] = field(init=False, repr=False)
    tmp: NDArray[np.float64] = field(init=False, repr=False)
    u_local: NDArray[np.float64] = field(init=False, repr=False)
    w_local: NDArray[np.float64] = field(init=False, repr=False)
    cg_x: NDArray[np.float64] = field(init=False, repr=False)
    cg_r: NDArray[np.float64] = field(init=False, repr=False)
    cg_z: NDArray[np.float64] = field(init=False, repr=False)
    cg_p: NDArray[np.float64] = field(init=False, repr=False)
    cg_ap: NDArray[np.float64] = field(init=False, repr=False)
    cg_tmp: NDArray[np.float64] = field(init=False, repr=False)
    cg_invm: NDArray[np.float64] = field(init=False, repr=False)
    g_tmp: NDArray[np.float64] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_elements < 1:
            raise ValueError(
                f"element count must be >= 1, got {self.num_elements}"
            )
        if self.nx < 2:
            raise ValueError(f"nx must be >= 2, got {self.nx}")
        if self.n_global < 0:
            raise ValueError(f"n_global must be >= 0, got {self.n_global}")
        shape = (self.num_elements, self.nx, self.nx, self.nx)
        for name in LOCAL_BUFFERS:
            setattr(self, name, np.empty(shape))
        for name in GLOBAL_BUFFERS:
            setattr(self, name, np.empty(self.n_global))

    # ------------------------------------------------------------------
    @classmethod
    def for_mesh(cls, mesh: BoxMesh) -> "SolverWorkspace":
        """Size a full workspace (kernel + CG buffers) from a mesh."""
        e, nx = mesh.l2g.shape[0], mesh.l2g.shape[1]
        return cls(num_elements=e, nx=nx, n_global=mesh.n_global)

    @property
    def local_shape(self) -> tuple[int, int, int, int]:
        """``(E, nx, nx, nx)`` shape the local buffers were sized for."""
        return (self.num_elements, self.nx, self.nx, self.nx)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the workspace buffers."""
        local = len(LOCAL_BUFFERS) * self.num_elements * self.nx ** 3
        return 8 * (local + len(GLOBAL_BUFFERS) * self.n_global)

    # ------------------------------------------------------------------
    def require_local(self, num_elements: int, nx: int) -> None:
        """Raise unless the local buffers match ``(num_elements, nx)``."""
        if (num_elements, nx) != (self.num_elements, self.nx):
            raise ValueError(
                f"workspace sized for (E={self.num_elements}, "
                f"nx={self.nx}), got fields with (E={num_elements}, "
                f"nx={nx})"
            )

    def require_global(self, n_global: int) -> None:
        """Raise unless the global buffers hold ``n_global`` entries."""
        if n_global != self.n_global:
            raise ValueError(
                f"workspace sized for {self.n_global} global DOFs, "
                f"got {n_global}"
            )
