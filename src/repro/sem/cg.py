"""Preconditioned conjugate gradients — the iterative solver around ``Ax``.

The paper's kernel lives inside "a preconditioned Krylov subspace method";
Nekbone, the proxy app the paper draws its CPU baseline from, is exactly a
Jacobi-preconditioned CG over the matrix-free SEM operator.  This module
provides that solver with an operator-callback interface so the FPGA
accelerator simulator can be swapped in as the ``Ax`` backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from numpy.typing import NDArray

Operator = Callable[[NDArray[np.float64]], NDArray[np.float64]]


@dataclass(frozen=True)
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        Final iterate.
    iterations:
        Number of iterations executed.
    converged:
        True if the residual criterion was met before ``maxiter``.
    residual_norm:
        Final preconditioned residual 2-norm.
    residual_history:
        Per-iteration residual norms (length ``iterations + 1``,
        including the initial residual).
    """

    x: NDArray[np.float64]
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: tuple[float, ...]


def cg_solve(
    apply_A: Operator,
    b: NDArray[np.float64],
    x0: NDArray[np.float64] | None = None,
    precond_diag: NDArray[np.float64] | None = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
) -> CGResult:
    """Solve ``A x = b`` for SPD ``A`` with (Jacobi-)preconditioned CG.

    Parameters
    ----------
    apply_A:
        Matrix-free operator callback.
    b:
        Right-hand side.
    x0:
        Initial guess (zeros if omitted).
    precond_diag:
        Diagonal of ``A`` for Jacobi preconditioning; identity if omitted.
        Entries must be positive.
    tol:
        Relative tolerance on ``||r||_2 / ||b||_2`` (absolute if ``b = 0``).
    maxiter:
        Iteration cap.

    Returns
    -------
    :class:`CGResult`.

    Raises
    ------
    ValueError
        On non-positive preconditioner entries or a breakdown (``p^T A p
    <= 0``), which indicates the operator is not SPD on this subspace.
    """
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    if x.shape != b.shape:
        raise ValueError(f"x0 shape {x.shape} != b shape {b.shape}")
    if precond_diag is not None:
        md = np.asarray(precond_diag, dtype=np.float64)
        if md.shape != b.shape:
            raise ValueError(f"preconditioner shape {md.shape} != {b.shape}")
        if np.any(md <= 0):
            raise ValueError("Jacobi preconditioner has non-positive entries")
        inv_m = 1.0 / md
    else:
        inv_m = None

    r = b - apply_A(x)
    z = r * inv_m if inv_m is not None else r
    p = z.copy()
    rz = float(np.dot(r, z))
    b_norm = float(np.linalg.norm(b))
    stop = tol * (b_norm if b_norm > 0 else 1.0)

    history = [float(np.linalg.norm(r))]
    converged = history[0] <= stop
    it = 0
    while not converged and it < maxiter:
        ap = apply_A(p)
        pap = float(np.dot(p, ap))
        if pap <= 0.0:
            if abs(pap) < 1e-300:  # exact zero direction: solved subspace
                break
            raise ValueError(
                f"CG breakdown: p^T A p = {pap:g} <= 0 (operator not SPD?)"
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        z = r * inv_m if inv_m is not None else r
        rz_new = float(np.dot(r, z))
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
        it += 1
        res = float(np.linalg.norm(r))
        history.append(res)
        converged = res <= stop

    return CGResult(
        x=x,
        iterations=it,
        converged=converged,
        residual_norm=history[-1],
        residual_history=tuple(history),
    )
