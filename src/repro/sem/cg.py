"""Preconditioned conjugate gradients — the iterative solver around ``Ax``.

The paper's kernel lives inside "a preconditioned Krylov subspace method";
Nekbone, the proxy app the paper draws its CPU baseline from, is exactly a
Jacobi-preconditioned CG over the matrix-free SEM operator.  This module
provides that solver with an operator-callback interface so the FPGA
accelerator simulator can be swapped in as the ``Ax`` backend.

The inner loop is allocation-free: every vector (``x``, ``r``, ``z``,
``p``, ``Ap`` and one axpy scratch) is bound once at entry — from a
:class:`~repro.sem.workspace.SolverWorkspace` when one is passed,
otherwise freshly allocated — and every update runs through in-place
ufuncs (``np.multiply``/``np.add`` with ``out=``).  If the operator
callback accepts an ``out=`` keyword (as
:meth:`repro.sem.poisson.PoissonProblem.apply_A` does), ``A p`` is also
computed without allocating, so a warm iteration performs zero
field-sized heap allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.sem.workspace import SolverWorkspace

Operator = Callable[[NDArray[np.float64]], NDArray[np.float64]]


@dataclass(frozen=True)
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        Final iterate.
    iterations:
        Number of iterations executed.
    converged:
        True if the residual criterion was met before ``maxiter``.
    residual_norm:
        Final preconditioned residual 2-norm.
    residual_history:
        Per-iteration residual norms (length ``iterations + 1``,
        including the initial residual).
    """

    x: NDArray[np.float64]
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: tuple[float, ...]


def _operator_accepts_out(apply_A: Operator) -> bool:
    """Probe the callback for ``out=`` support (see module docstring)."""
    from repro.sem.kernels import accepts_keyword

    return accepts_keyword(apply_A, "out")


def cg_solve(
    apply_A: Operator,
    b: NDArray[np.float64],
    x0: NDArray[np.float64] | None = None,
    precond_diag: NDArray[np.float64] | None = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    workspace: "SolverWorkspace | None" = None,
) -> CGResult:
    """Solve ``A x = b`` for SPD ``A`` with (Jacobi-)preconditioned CG.

    Parameters
    ----------
    apply_A:
        Matrix-free operator callback.  If it accepts an ``out=``
        keyword, results are written into a preallocated buffer.
    b:
        Right-hand side.
    x0:
        Initial guess (zeros if omitted).
    precond_diag:
        Diagonal of ``A`` for Jacobi preconditioning; identity if omitted.
        Entries must be positive.
    tol:
        Relative tolerance on ``||r||_2 / ||b||_2`` (absolute if ``b = 0``).
    maxiter:
        Iteration cap.
    workspace:
        Optional :class:`~repro.sem.workspace.SolverWorkspace` supplying
        the five CG vectors plus scratch (sized for ``b``).  The
        returned iterate is copied out of the workspace, so the result
        stays valid across subsequent solves.

    Returns
    -------
    :class:`CGResult`.

    Raises
    ------
    ValueError
        On non-positive preconditioner entries or a breakdown (``p^T A p
    <= 0``), which indicates the operator is not SPD on this subspace.
    """
    b = np.asarray(b, dtype=np.float64)
    if workspace is not None:
        if b.ndim != 1:
            raise ValueError(
                f"workspace solves need a 1-D rhs, got shape {b.shape}"
            )
        workspace.require_global(b.shape[0])
        x, r, z_buf, p, ap, tmp = (
            workspace.cg_x, workspace.cg_r, workspace.cg_z,
            workspace.cg_p, workspace.cg_ap, workspace.cg_tmp,
        )
    else:
        x, r, z_buf, p, ap, tmp = (np.empty_like(b) for _ in range(6))
    if x0 is None:
        x.fill(0.0)
    else:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != b.shape:
            raise ValueError(f"x0 shape {x0.shape} != b shape {b.shape}")
        np.copyto(x, x0)
    if precond_diag is not None:
        md = np.asarray(precond_diag, dtype=np.float64)
        if md.shape != b.shape:
            raise ValueError(f"preconditioner shape {md.shape} != {b.shape}")
        if np.any(md <= 0):
            raise ValueError("Jacobi preconditioner has non-positive entries")
        if workspace is not None:
            inv_m = workspace.cg_invm
            np.divide(1.0, md, out=inv_m)
        else:
            inv_m = 1.0 / md
        z = z_buf
    else:
        inv_m = None
        z = r  # unpreconditioned: z aliases r, no copy needed

    out_ok = _operator_accepts_out(apply_A)

    def apply_into(vec: NDArray[np.float64], dst: NDArray[np.float64]) -> None:
        # Operators may accept ``out=`` yet still return a fresh array
        # (only writing into ``out`` is optional); honor the return
        # value whenever it isn't the destination buffer itself.
        res = apply_A(vec, out=dst) if out_ok else apply_A(vec)
        if res is not dst:
            np.copyto(dst, res)

    apply_into(x, ap)
    np.subtract(b, ap, out=r)
    if inv_m is not None:
        np.multiply(r, inv_m, out=z)
    np.copyto(p, z)
    rz = float(np.dot(r, z))
    # sqrt(dot) instead of np.linalg.norm: norm materializes an x*x
    # temporary, which would be the hot loop's only field-sized alloc.
    b_norm = float(np.sqrt(np.dot(b.reshape(-1), b.reshape(-1))))
    stop = tol * (b_norm if b_norm > 0 else 1.0)

    history = [float(np.sqrt(np.dot(r.reshape(-1), r.reshape(-1))))]
    converged = history[0] <= stop
    it = 0
    while not converged and it < maxiter:
        apply_into(p, ap)
        pap = float(np.dot(p, ap))
        if pap <= 0.0:
            if abs(pap) < 1e-300:  # exact zero direction: solved subspace
                break
            raise ValueError(
                f"CG breakdown: p^T A p = {pap:g} <= 0 (operator not SPD?)"
            )
        alpha = rz / pap
        np.multiply(p, alpha, out=tmp)
        x += tmp
        np.multiply(ap, alpha, out=tmp)
        r -= tmp
        if inv_m is not None:
            np.multiply(r, inv_m, out=z)
        rz_new = float(np.dot(r, z))
        beta = rz_new / rz
        rz = rz_new
        np.multiply(p, beta, out=p)
        p += z
        it += 1
        res = float(np.sqrt(np.dot(r.reshape(-1), r.reshape(-1))))
        history.append(res)
        converged = res <= stop

    return CGResult(
        x=x.copy() if workspace is not None else x,
        iterations=it,
        converged=converged,
        residual_norm=history[-1],
        residual_history=tuple(history),
    )
