"""Preconditioned conjugate gradients — the iterative solver around ``Ax``.

The paper's kernel lives inside "a preconditioned Krylov subspace method";
Nekbone, the proxy app the paper draws its CPU baseline from, is exactly a
Jacobi-preconditioned CG over the matrix-free SEM operator.  This module
provides that solver with an operator-callback interface so the FPGA
accelerator simulator can be swapped in as the ``Ax`` backend.

The inner loop is allocation-free: every vector (``x``, ``r``, ``z``,
``p``, ``Ap`` and one axpy scratch) is bound once at entry — from a
:class:`~repro.sem.workspace.SolverWorkspace` when one is passed,
otherwise freshly allocated — and every update runs through in-place
ufuncs (``np.multiply``/``np.add`` with ``out=``).  If the operator
callback accepts an ``out=`` keyword (as
:meth:`repro.sem.poisson.PoissonProblem.apply_A` does), ``A p`` is also
computed without allocating, so a warm iteration performs zero
field-sized heap allocations.

:func:`cg_solve_batched` extends the same discipline to a stacked
``(B, n)`` block of right-hand sides: one operator application and one
set of fused ``(B, n)`` vector updates per iteration serve all ``B``
systems, with per-system convergence masking and (optionally)
per-system ``tol``/``maxiter`` — the multi-tenant serving path (a
``(B, n)`` rhs passed to :func:`cg_solve` dispatches there).

Both paths accumulate their inner products with the same fused
``multiply`` + pairwise-``sum`` sequence (rather than BLAS ``ddot``,
whose accumulation order differs in the last ulp), so a system solved
inside a stacked block is **bit-identical** to the same system solved
alone — the property the micro-batching serving layer
(:mod:`repro.serve`) is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np
from numpy.typing import NDArray

from repro.analysis.annotations import hot_path

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.sem.workspace import SolverWorkspace

Operator = Callable[[NDArray[np.float64]], NDArray[np.float64]]


@dataclass(frozen=True)
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        Final iterate.
    iterations:
        Number of iterations executed.
    converged:
        True if the residual criterion was met before ``maxiter``, or if
        the Krylov subspace was exhausted (exact-zero search direction),
        in which case the iterate is the exact solution on that subspace.
    residual_norm:
        Final preconditioned residual 2-norm.
    residual_history:
        Per-iteration residual norms (length ``iterations + 1``,
        including the initial residual).
    """

    x: NDArray[np.float64]
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: tuple[float, ...]


def _operator_accepts_out(apply_A: Operator) -> bool:
    """Probe the callback for ``out=`` support (see module docstring).

    Memoized through :func:`repro.sem.kernels.accepts_keyword`
    (``functools.lru_cache``), so repeated short solves don't re-run
    ``inspect.signature`` reflection on every call.
    """
    from repro.sem.kernels import accepts_keyword

    return accepts_keyword(apply_A, "out")


def cg_solve(
    apply_A: Operator,
    b: NDArray[np.float64],
    x0: NDArray[np.float64] | None = None,
    precond_diag: NDArray[np.float64] | None = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    workspace: "SolverWorkspace | None" = None,
    dtype: "np.dtype | type" = np.float64,
) -> "CGResult | BatchedCGResult":
    """Solve ``A x = b`` for SPD ``A`` with (Jacobi-)preconditioned CG.

    Parameters
    ----------
    apply_A:
        Matrix-free operator callback.  If it accepts an ``out=``
        keyword, results are written into a preallocated buffer.
    b:
        Right-hand side.  A stacked ``(B, n)`` block solves ``B``
        independent systems at once through
        :func:`cg_solve_batched` (returning its
        :class:`BatchedCGResult`).
    x0:
        Initial guess (zeros if omitted).
    precond_diag:
        Diagonal of ``A`` for Jacobi preconditioning; identity if omitted.
        Entries must be positive.
    tol:
        Relative tolerance on ``||r||_2 / ||b||_2`` (absolute if ``b = 0``).
        A ``(B,)`` array is accepted only with a stacked rhs (per-system
        tolerances; see :func:`cg_solve_batched`).
    maxiter:
        Iteration cap (``(B,)`` array accepted only with a stacked rhs).
    workspace:
        Optional :class:`~repro.sem.workspace.SolverWorkspace` supplying
        the five CG vectors plus scratch (sized for ``b``).  The
        returned iterate is copied out of the workspace, so the result
        stays valid across subsequent solves.
    dtype:
        Floating dtype of the iteration's *vectors* (``b``, ``x``,
        ``r``, ``p``, …).  ``float64`` (the default) is the historical
        bit-exact path; ``float32`` is the inner loop of the
        mixed-precision solvers (:func:`cg_solve_mixed`) — vector
        storage and updates run in fp32 while every inner product is
        still **accumulated in fp64** with the same fused
        multiply + pairwise-sum sequence, so the batched/sequential
        bit-identity contract carries over unchanged.  A supplied
        ``workspace`` must match this dtype.

    Returns
    -------
    CGResult
        The final iterate with its convergence record (or a
        :class:`BatchedCGResult` when ``b`` was a stacked block).

    Raises
    ------
    ValueError
        On shape mismatches, non-positive preconditioner entries, a
        non-finite ``tol``, or a breakdown (``p^T A p <= 0``), which
        indicates the operator is not SPD on this subspace.

    Notes
    -----
    Not thread-safe per workspace: the solve mutates the workspace's
    (or the operator's own) buffers in place, so one
    workspace/problem admits one solve at a time.  Concurrent solves
    need distinct problems (see
    :meth:`repro.sem.poisson.PoissonProblem.clone`) or serialized
    access (:class:`repro.serve.pool.WorkspacePool`).
    """
    dtype = np.dtype(dtype)
    b = np.asarray(b, dtype=dtype)
    if b.ndim == 2:
        # Stacked multi-RHS block: hand off to the batched loop (one
        # warm workspace carries all systems; see cg_solve_batched).
        return cg_solve_batched(
            apply_A, b, x0=x0, precond_diag=precond_diag, tol=tol,
            maxiter=maxiter, workspace=workspace, dtype=dtype,
        )
    if b.ndim != 1:
        raise ValueError(
            f"rhs must be 1-D (or (B, n) for a batched solve), "
            f"got shape {b.shape}"
        )
    if np.ndim(tol) != 0 or np.ndim(maxiter) != 0:
        raise ValueError(
            "per-system tol/maxiter arrays require a stacked (B, n) rhs"
        )
    if not np.isfinite(tol):
        # A NaN tolerance would silently diverge from the batched path
        # (whose active-mask comparison treats NaN as "already done").
        raise ValueError(f"tol must be finite, got {tol}")
    if workspace is not None:
        workspace.require_batch(1)
        workspace.require_global(b.shape[0])
        if workspace.cg_x.dtype != dtype:
            raise ValueError(
                f"workspace dtype {workspace.cg_x.dtype} != solve "
                f"dtype {dtype}"
            )
        x, r, z_buf, p, ap, tmp = (
            workspace.cg_x, workspace.cg_r, workspace.cg_z,
            workspace.cg_p, workspace.cg_ap, workspace.cg_tmp,
        )
    else:
        x, r, z_buf, p, ap, tmp = (np.empty_like(b) for _ in range(6))
    if x0 is None:
        x.fill(0.0)
    else:
        x0 = np.asarray(x0, dtype=dtype)
        if x0.shape != b.shape:
            raise ValueError(f"x0 shape {x0.shape} != b shape {b.shape}")
        np.copyto(x, x0)
    if precond_diag is not None:
        md = np.asarray(precond_diag, dtype=dtype)
        if md.shape != b.shape:
            raise ValueError(f"preconditioner shape {md.shape} != {b.shape}")
        if np.any(md <= 0):
            raise ValueError("Jacobi preconditioner has non-positive entries")
        if workspace is not None:
            inv_m = workspace.cg_invm
            np.divide(1.0, md, out=inv_m)
        else:
            inv_m = 1.0 / md
        z = z_buf
    else:
        inv_m = None
        z = r  # unpreconditioned: z aliases r, no copy needed

    out_ok = _operator_accepts_out(apply_A)

    @hot_path
    def apply_into(vec: NDArray[np.float64], dst: NDArray[np.float64]) -> None:
        # Operators may accept ``out=`` yet still return a fresh array
        # (only writing into ``out`` is optional); honor the return
        # value whenever it isn't the destination buffer itself.
        res = apply_A(vec, out=dst) if out_ok else apply_A(vec)
        if res is not dst:
            np.copyto(dst, res)

    @hot_path
    def fused_dot(
        a_vec: NDArray[np.float64], b_vec: NDArray[np.float64]
    ) -> float:
        # multiply + pairwise sum, not BLAS ddot: the exact accumulation
        # the batched loop's row_dots performs, so a solve here is
        # bit-identical to the same system inside a stacked block.  (It
        # also avoids np.linalg.norm's x*x field-sized temporary.)
        # The explicit fp64 accumulator is a no-op for fp64 vectors and
        # the load-bearing half of the fp32 contract: products round to
        # fp32 storage, the sum never does.
        np.multiply(a_vec, b_vec, out=tmp)
        return float(np.sum(tmp, dtype=np.float64))

    apply_into(x, ap)
    np.subtract(b, ap, out=r)
    if inv_m is not None:
        np.multiply(r, inv_m, out=z)
    np.copyto(p, z)
    rz = fused_dot(r, z)
    b_norm = float(np.sqrt(fused_dot(b, b)))
    stop = tol * (b_norm if b_norm > 0 else 1.0)

    history = [float(np.sqrt(fused_dot(r, r)))]
    converged = history[0] <= stop
    it = 0
    while not converged and it < maxiter:
        apply_into(p, ap)
        pap = fused_dot(p, ap)
        if pap <= 0.0:
            if abs(pap) < 1e-300:
                # Exact zero direction: the Krylov subspace is exhausted
                # and the iterate solves the system on it exactly —
                # report convergence (matching cg_solve_batched).
                converged = True
                break
            raise ValueError(
                f"CG breakdown: p^T A p = {pap:g} <= 0 (operator not SPD?)"
            )
        alpha = rz / pap
        np.multiply(p, alpha, out=tmp)
        x += tmp
        np.multiply(ap, alpha, out=tmp)
        r -= tmp
        if inv_m is not None:
            np.multiply(r, inv_m, out=z)
        rz_new = fused_dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        np.multiply(p, beta, out=p)
        p += z
        it += 1
        res = float(np.sqrt(fused_dot(r, r)))
        history.append(res)
        converged = res <= stop

    return CGResult(
        x=x.copy() if workspace is not None else x,
        iterations=it,
        converged=converged,
        residual_norm=history[-1],
        residual_history=tuple(history),
    )


@dataclass(frozen=True)
class BatchedCGResult:
    """Outcome of a batched multi-RHS CG solve.

    Attributes
    ----------
    x:
        Final iterates, shape ``(B, n)``.
    iterations:
        Per-system iteration counts, shape ``(B,)`` — the iteration at
        which each system first met its own residual criterion (the
        total executed count for systems that never converged).
    converged:
        Per-system convergence flags, shape ``(B,)``.  A system frozen
        by the exact-zero-direction breakdown path (its Krylov subspace
        is exhausted and exactly solved) counts as converged even when
        its residual criterion was never met.
    residual_norm:
        Final residual 2-norms, shape ``(B,)``.
    residual_history:
        Residual norms per iteration and system, shape
        ``(total_iterations + 1, B)`` (frozen rows for systems that
        converged early).
    """

    x: NDArray[np.float64]
    iterations: NDArray[np.int64]
    converged: NDArray[np.bool_]
    residual_norm: NDArray[np.float64]
    residual_history: NDArray[np.float64]

    @property
    def batch(self) -> int:
        """Number of systems in the block."""
        return self.x.shape[0]

    @property
    def all_converged(self) -> bool:
        """True if every system met its residual criterion."""
        return bool(np.all(self.converged))

    @property
    def total_iterations(self) -> int:
        """Iterations the batched loop executed (the slowest system)."""
        return self.residual_history.shape[0] - 1


def cg_solve_batched(
    apply_A: Operator,
    b: NDArray[np.float64],
    x0: NDArray[np.float64] | None = None,
    precond_diag: NDArray[np.float64] | None = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    workspace: "SolverWorkspace | None" = None,
    dtype: "np.dtype | type" = np.float64,
) -> BatchedCGResult:
    """Solve ``B`` independent SPD systems ``A x_i = b_i`` in lockstep.

    All ``B`` systems share the operator ``A`` (and optionally the
    Jacobi diagonal), so every iteration applies the operator to one
    stacked ``(B, n)`` block — the matrix-free SEM ``Ax`` then reads the
    geometric factors once per element block for all systems, and the
    CG vector updates run as single fused ``(B, n)`` ufuncs instead of
    ``B`` separate Python-level loops.  This is the multi-tenant serving
    primitive: one warm workspace amortizes geometry traffic and
    dispatch overhead across every solve in flight.

    Convergence is masked per system: each system stops updating
    (``alpha_i = 0``) once its own residual criterion
    ``||r_i|| <= tol * ||b_i||`` is met, while the remaining systems
    iterate on — numerically equivalent to solving each system
    separately to the same tolerance.

    Parameters
    ----------
    apply_A:
        Matrix-free operator callback; must accept a stacked ``(B, n)``
        argument (as :meth:`repro.sem.poisson.PoissonProblem.apply_A`
        does).  ``out=`` support is probed as in :func:`cg_solve`.
    b:
        Stacked right-hand sides, shape ``(B, n)``.
    x0:
        Optional stacked initial guesses, shape ``(B, n)`` (zeros if
        omitted).
    precond_diag:
        Jacobi diagonal, shape ``(n,)`` (shared by all systems) or
        ``(B, n)`` (per system).  Entries must be positive.
    tol, maxiter:
        As :func:`cg_solve`; the tolerance is applied per system.
        Either may also be a ``(B,)`` array giving each system its own
        request-level tolerance / iteration cap: a system freezes
        (bit-identically, ``alpha_i = 0``) once it meets *its* criterion
        or exhausts *its* cap, so heterogeneous requests coalesced into
        one stacked solve finish exactly as if solved separately.
    workspace:
        Optional :class:`~repro.sem.workspace.SolverWorkspace` built
        with ``batch=B``; supplies every ``(B, n)`` CG vector plus the
        per-system scalar buffers, making warm iterations free of
        field-sized heap allocations.
    dtype:
        Vector dtype, as in :func:`cg_solve`: fp32 vectors with fp64
        dot accumulation for the mixed-precision inner loop.  The
        per-system scalar state (``rz``, ``alpha``, residual norms, …)
        is fp64 on every path.

    Returns
    -------
    BatchedCGResult
        Per-system iterates, iteration counts, convergence flags and
        the stacked residual history.

    Raises
    ------
    ValueError
        On shape mismatches, non-positive preconditioner entries,
        non-finite ``tol`` entries, negative ``maxiter`` entries, or a
        CG breakdown (``p_i^T A p_i <= 0`` on an active system).

    Notes
    -----
    Not thread-safe per workspace (same rule as :func:`cg_solve`): the
    stacked buffers are mutated in place, so one batched workspace
    carries one stacked solve at a time.
    """
    dtype = np.dtype(dtype)
    b = np.asarray(b, dtype=dtype)
    if b.ndim != 2:
        raise ValueError(f"batched rhs must be (B, n), got shape {b.shape}")
    nb, n = b.shape
    if nb < 1:
        raise ValueError("batched rhs needs at least one system")
    tol_arr = np.asarray(tol, dtype=np.float64)
    if tol_arr.ndim not in (0, 1) or (
        tol_arr.ndim == 1 and tol_arr.shape != (nb,)
    ):
        raise ValueError(
            f"tol must be a scalar or ({nb},), got shape {tol_arr.shape}"
        )
    if not np.all(np.isfinite(tol_arr)):
        # NaN poisons the res > stop active mask (comparisons with NaN
        # are False), freezing that system at 0 iterations where the
        # sequential path would have iterated — reject it loudly.
        raise ValueError("tol entries must be finite")
    miter = np.asarray(maxiter, dtype=np.int64)
    if miter.ndim not in (0, 1) or (
        miter.ndim == 1 and miter.shape != (nb,)
    ):
        raise ValueError(
            f"maxiter must be a scalar or ({nb},), got shape {miter.shape}"
        )
    if miter.size and miter.min() < 0:
        raise ValueError("maxiter entries must be >= 0")
    iter_cap = int(miter.max()) if miter.size else 0
    if workspace is not None:
        workspace.require_batch(nb)
        workspace.require_global(n)
        if workspace.cg_x.dtype != dtype:
            raise ValueError(
                f"workspace dtype {workspace.cg_x.dtype} != solve "
                f"dtype {dtype}"
            )
        # reshape(nb, -1) is a no-op view for a batch>1 workspace and
        # lifts the unbatched (n,) buffers of a batch-of-one solve.
        x, r, z_buf, p, ap, tmp = (
            buf.reshape(nb, -1) for buf in (
                workspace.cg_x, workspace.cg_r, workspace.cg_z,
                workspace.cg_p, workspace.cg_ap, workspace.cg_tmp,
            )
        )
        rz, pap, alpha, beta = (
            workspace.cg_rz, workspace.cg_pap,
            workspace.cg_alpha, workspace.cg_beta,
        )
        res, stop, active = (
            workspace.cg_res, workspace.cg_stop, workspace.cg_active,
        )
    else:
        x, r, z_buf, p, ap, tmp = (np.empty_like(b) for _ in range(6))
        rz, pap, alpha, beta, res, stop = (np.empty(nb) for _ in range(6))
        active = np.empty(nb, dtype=bool)
    if x0 is None:
        x.fill(0.0)
    else:
        x0 = np.asarray(x0, dtype=dtype)
        if x0.shape != b.shape:
            raise ValueError(f"x0 shape {x0.shape} != b shape {b.shape}")
        np.copyto(x, x0)
    if precond_diag is not None:
        md = np.asarray(precond_diag, dtype=dtype)
        if md.shape not in ((n,), (nb, n)):
            raise ValueError(
                f"preconditioner shape {md.shape} must be ({n},) "
                f"or {(nb, n)}"
            )
        if np.any(md <= 0):
            raise ValueError("Jacobi preconditioner has non-positive entries")
        if workspace is not None:
            inv_m = workspace.cg_invm
            inv_m[...] = 1.0 / md  # broadcast a shared (n,) diagonal
        else:
            inv_m = np.broadcast_to(1.0 / md, b.shape)
        z = z_buf
    else:
        inv_m = None
        z = r  # unpreconditioned: z aliases r, no copy needed

    out_ok = _operator_accepts_out(apply_A)

    @hot_path
    def apply_into(vec: NDArray[np.float64], dst: NDArray[np.float64]) -> None:
        res_arr = apply_A(vec, out=dst) if out_ok else apply_A(vec)
        if res_arr is not dst:
            np.copyto(dst, res_arr)

    @hot_path
    def row_dots(
        a_vec: NDArray[np.float64],
        b_vec: NDArray[np.float64],
        dst: NDArray[np.float64],
    ) -> None:
        # Fused per-system inner products without a (B, n) temporary.
        # dtype=float64 pins the accumulator (no-op for fp64 vectors,
        # the precision contract for fp32 ones — dst is always fp64).
        np.multiply(a_vec, b_vec, out=tmp)
        np.sum(tmp, axis=1, out=dst, dtype=np.float64)

    apply_into(x, ap)
    np.subtract(b, ap, out=r)
    if inv_m is not None:
        np.multiply(r, inv_m, out=z)
    np.copyto(p, z)
    row_dots(r, z, rz)
    row_dots(b, b, stop)
    np.sqrt(stop, out=stop)  # ||b_i||
    stop[...] = tol_arr * np.where(stop > 0, stop, 1.0)

    row_dots(r, r, res)
    np.sqrt(res, out=res)
    np.greater(res, stop, out=active)
    if miter.ndim:
        active &= miter > 0  # zero-cap requests never start iterating
    iterations = np.zeros(nb, dtype=np.int64)
    # Systems frozen by subspace exhaustion are solved on their Krylov
    # subspace even though their residual criterion never fires; they
    # are folded into the returned ``converged``.
    exhausted_total = np.zeros(nb, dtype=bool)
    alpha.fill(0.0)
    beta.fill(0.0)
    if dtype == np.float64:
        # fp64 vectors: broadcast the fp64 scalars directly.
        alpha_v, beta_v = alpha, beta
    else:
        # fp32 vectors: the scalar recurrence (rz, alpha, beta) stays
        # fp64, but the *vector* updates must multiply by the
        # dtype-rounded scalar — cg_solve's ``p * alpha`` casts its
        # Python-float alpha to fp32 and multiplies in fp32, whereas
        # broadcasting the fp64 array here would promote the multiply
        # to fp64 and round only on store, breaking the
        # batched/sequential bit-identity contract.
        alpha_v = np.empty(nb, dtype=dtype)
        beta_v = np.empty(nb, dtype=dtype)
    history = [res.copy()]
    it = 0
    while bool(np.any(active)) and it < iter_cap:
        apply_into(p, ap)
        row_dots(p, ap, pap)
        bad = active & (pap <= 0.0)
        if np.any(bad):
            exhausted = bad & (np.abs(pap) < 1e-300)
            if np.array_equal(bad, exhausted):
                # Exact zero directions: those systems' subspaces are
                # solved; freeze them and let the others continue.
                active &= ~exhausted
                exhausted_total |= exhausted
                iterations[exhausted] = it
                if not np.any(active):
                    break
            else:
                worst = float(pap[bad & ~exhausted].min())
                raise ValueError(
                    f"CG breakdown: p^T A p = {worst:g} <= 0 on an active "
                    "system (operator not SPD?)"
                )
        # Masked step: converged systems get alpha = beta = 0, freezing
        # their x and r exactly (bit-for-bit) while the rest iterate.
        np.divide(rz, pap, out=alpha, where=active)
        np.multiply(alpha, active, out=alpha)
        if alpha_v is not alpha:
            np.copyto(alpha_v, alpha)  # round the step to the vector dtype
        np.multiply(p, alpha_v[:, None], out=tmp)
        x += tmp
        np.multiply(ap, alpha_v[:, None], out=tmp)
        r -= tmp
        if inv_m is not None:
            np.multiply(r, inv_m, out=z)
        row_dots(r, z, pap)  # pap now carries rz_new
        np.divide(pap, rz, out=beta, where=active)
        np.multiply(beta, active, out=beta)
        np.copyto(rz, pap)
        if beta_v is not beta:
            np.copyto(beta_v, beta)
        np.multiply(p, beta_v[:, None], out=p)
        # Only active systems pick up the new search direction (frozen
        # systems have beta = 0, so their p is simply parked at zero).
        np.multiply(z, active[:, None], out=tmp)
        p += tmp
        it += 1
        row_dots(r, r, res)
        np.sqrt(res, out=res)
        history.append(res.copy())
        newly_done = active & (res <= stop)
        iterations[newly_done] = it
        active &= ~newly_done
        if miter.ndim:
            # Per-request iteration caps: freeze systems at their own
            # maxiter (their x is already exactly the capped iterate).
            capped = active & (it >= miter)
            iterations[capped] = it
            active &= ~capped

    iterations[active] = it  # systems that hit maxiter
    return BatchedCGResult(
        x=x.copy() if workspace is not None else x,
        iterations=iterations,
        converged=(res <= stop) | exhausted_total,
        residual_norm=res.copy(),
        residual_history=np.stack(history),
    )


# ----------------------------------------------------------------------
# Mixed precision: fp32 inner Jacobi-CG + fp64 iterative refinement
# ----------------------------------------------------------------------

#: Solve precision policies understood end to end (problems, services,
#: process shards): ``"fp64"`` is the historical bit-exact double path,
#: ``"mixed"`` the fp32-inner / fp64-refinement path.
VALID_PRECISIONS: tuple[str, ...] = ("fp64", "mixed")


def check_precision(precision: str) -> str:
    """Validate a precision policy string, returning it unchanged."""
    if precision not in VALID_PRECISIONS:
        raise ValueError(
            f"precision must be one of {VALID_PRECISIONS}, "
            f"got {precision!r}"
        )
    return precision


@dataclass(frozen=True)
class MixedCGResult:
    """Outcome of a mixed-precision refinement solve.

    Mirrors :class:`CGResult` (``x``/``iterations``/``converged``/
    ``residual_norm``) so the serving layer handles both uniformly, and
    adds the refinement bookkeeping.

    Attributes
    ----------
    x:
        Final fp64 iterate.
    iterations:
        Total fp32 inner CG iterations across all sweeps.
    converged:
        True if the fp64 true-residual criterion was met within the
        sweep cap (and refinement never stalled).
    residual_norm:
        Final **true** fp64 residual 2-norm ``||b - A x||`` — not the
        inner loop's recurrence residual.
    residual_history:
        True-residual norms per refinement sweep (length
        ``sweeps + 1``, including the initial residual).
    sweeps:
        Refinement sweeps executed (fp32 correction solves).
    inner_iterations:
        Per-sweep fp32 CG iteration counts (length ``sweeps``).
    """

    x: NDArray[np.float64]
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: tuple[float, ...]
    sweeps: int
    inner_iterations: tuple[int, ...]


@dataclass(frozen=True)
class BatchedMixedCGResult:
    """Outcome of a batched mixed-precision refinement solve.

    Mirrors :class:`BatchedCGResult` plus per-system sweep counts.

    Attributes
    ----------
    x:
        Final fp64 iterates, shape ``(B, n)``.
    iterations:
        Total fp32 inner iterations per system, shape ``(B,)``.
    converged:
        Per-system fp64 true-residual convergence flags, shape ``(B,)``.
    residual_norm:
        Final true fp64 residual norms, shape ``(B,)``.
    residual_history:
        True-residual norms per sweep and system, shape
        ``(total_sweeps + 1, B)``.
    sweeps:
        Per-system sweep counts (the sweep at which each system met its
        criterion; the total executed count for systems that never
        converged), shape ``(B,)``.
    inner_iterations:
        fp32 inner CG iterations per sweep and system, shape
        ``(total_sweeps, B)``; frozen systems contribute zeros.  Row
        prefixes of length ``sweeps[k]`` recover each system's solo
        per-sweep record.
    """

    x: NDArray[np.float64]
    iterations: NDArray[np.int64]
    converged: NDArray[np.bool_]
    residual_norm: NDArray[np.float64]
    residual_history: NDArray[np.float64]
    sweeps: NDArray[np.int64]
    inner_iterations: NDArray[np.int64]

    @property
    def batch(self) -> int:
        """Number of systems in the block."""
        return self.x.shape[0]

    @property
    def all_converged(self) -> bool:
        """True if every system met its fp64 residual criterion."""
        return bool(np.all(self.converged))

    @property
    def total_sweeps(self) -> int:
        """Refinement sweeps the batched loop executed (slowest system)."""
        return self.residual_history.shape[0] - 1


#: Default relative tolerance of the fp32 correction solves.  Each sweep
#: multiplies the true residual by roughly this factor — until the fp32
#: operator-quantization floor cuts in: the correction ``d`` is computed
#: against ``A32``, so the fp64 residual after the update carries a
#: ``(A - A32) d`` term of order ``kappa * eps_fp32`` relative to the
#: sweep's own residual (~1e-4 at the N=7/E=512 bench shape).  Pushing
#: the inner recurrence below that floor burns fp32 iterations the
#: refinement update immediately throws away — measured end to end,
#: 1e-4 needs fewer *total* inner iterations than 1e-5 at every shape
#: tried, while still reaching ``tol = 1e-10`` in about three sweeps.
MIXED_INNER_TOL: float = 1e-4

#: Default cap on refinement sweeps.  Well-conditioned SEM systems
#: converge in 2-4; hitting the cap means fp32 refinement is stalling on
#: this operator (the result reports ``converged=False``).
MIXED_MAX_SWEEPS: int = 8


def cg_solve_mixed(
    apply_A: Operator,
    apply_A32: Operator,
    b: NDArray[np.float64],
    x0: NDArray[np.float64] | None = None,
    precond_diag: NDArray[np.float64] | None = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    workspace: "SolverWorkspace | None" = None,
    workspace32: "SolverWorkspace | None" = None,
    inner_tol: float = MIXED_INNER_TOL,
    max_sweeps: int = MIXED_MAX_SWEEPS,
) -> "MixedCGResult | BatchedMixedCGResult":
    """Solve ``A x = b`` to fp64 ``tol`` with fp32 inner CG sweeps.

    Classic iterative refinement around the bandwidth-bound ``Ax``: the
    expensive Krylov iteration runs entirely in fp32 (:func:`cg_solve`
    with ``dtype=float32`` — half the bytes per DOF through the
    sum-factorization kernels), while an outer fp64 loop recomputes the
    **true** residual ``r = b - A x``, feeds it back as the next fp32
    correction problem ``A d = r``, and accumulates ``x += d`` in fp64.
    Convergence is judged only on the fp64 true residual, so the result
    meets the caller's fp64 tolerance despite the fp32 inner arithmetic
    (as long as the operator is well-enough conditioned for fp32 to
    make progress; a stalled sweep terminates with
    ``converged=False`` instead of burning the sweep cap).

    Parameters
    ----------
    apply_A:
        fp64 operator callback (true-residual recomputation).
    apply_A32:
        fp32 operator callback over the same physical operator —
        typically the problem's fp32-geometry twin.  Must accept and
        return fp32 arrays.
    b:
        fp64 right-hand side; a stacked ``(B, n)`` block dispatches to
        :func:`cg_solve_batched_mixed`.
    x0, precond_diag, tol, maxiter:
        As :func:`cg_solve`.  ``maxiter`` caps each fp32 inner solve
        (per sweep); the preconditioner is cast to fp32 once for the
        inner loop.
    workspace:
        Optional fp64 workspace for the outer loop's vectors.
    workspace32:
        Optional fp32 workspace (same mesh/batch sizing) for the inner
        solves.
    inner_tol:
        Relative tolerance of each fp32 correction solve
        (default :data:`MIXED_INNER_TOL`).
    max_sweeps:
        Refinement sweep cap (default :data:`MIXED_MAX_SWEEPS`).

    Returns
    -------
    MixedCGResult
        fp64 iterate, true-residual record and sweep bookkeeping (or a
        :class:`BatchedMixedCGResult` for a stacked ``b``).
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 2:
        return cg_solve_batched_mixed(
            apply_A, apply_A32, b, x0=x0, precond_diag=precond_diag,
            tol=tol, maxiter=maxiter, workspace=workspace,
            workspace32=workspace32, inner_tol=inner_tol,
            max_sweeps=max_sweeps,
        )
    if b.ndim != 1:
        raise ValueError(
            f"rhs must be 1-D (or (B, n) for a batched solve), "
            f"got shape {b.shape}"
        )
    if np.ndim(tol) != 0 or np.ndim(maxiter) != 0:
        raise ValueError(
            "per-system tol/maxiter arrays require a stacked (B, n) rhs"
        )
    if not np.isfinite(tol):
        raise ValueError(f"tol must be finite, got {tol}")
    if max_sweeps < 1:
        raise ValueError(f"max_sweeps must be >= 1, got {max_sweeps}")
    if workspace is not None:
        workspace.require_batch(1)
        workspace.require_global(b.shape[0])
        if workspace.cg_x.dtype != np.float64:
            raise ValueError(
                f"outer workspace must be fp64, got {workspace.cg_x.dtype}"
            )
        x, r, ap, tmp = (
            workspace.cg_x, workspace.cg_r, workspace.cg_ap,
            workspace.cg_tmp,
        )
    else:
        x, r, ap, tmp = (np.empty_like(b) for _ in range(4))
    md32 = None
    if precond_diag is not None:
        md = np.asarray(precond_diag, dtype=np.float64)
        if md.shape != b.shape:
            raise ValueError(f"preconditioner shape {md.shape} != {b.shape}")
        if np.any(md <= 0):
            raise ValueError("Jacobi preconditioner has non-positive entries")
        md32 = md.astype(np.float32)

    out_ok = _operator_accepts_out(apply_A)

    @hot_path
    def apply_into(vec: NDArray[np.float64], dst: NDArray[np.float64]) -> None:
        res = apply_A(vec, out=dst) if out_ok else apply_A(vec)
        if res is not dst:
            np.copyto(dst, res)

    @hot_path
    def fused_dot(
        a_vec: NDArray[np.float64], b_vec: NDArray[np.float64]
    ) -> float:
        np.multiply(a_vec, b_vec, out=tmp)
        return float(np.sum(tmp, dtype=np.float64))

    if x0 is None:
        x.fill(0.0)
        np.copyto(r, b)  # r = b - A*0 without paying the operator
    else:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != b.shape:
            raise ValueError(f"x0 shape {x0.shape} != b shape {b.shape}")
        np.copyto(x, x0)
        apply_into(x, ap)
        np.subtract(b, ap, out=r)
    b_norm = float(np.sqrt(fused_dot(b, b)))
    stop = tol * (b_norm if b_norm > 0 else 1.0)

    history = [float(np.sqrt(fused_dot(r, r)))]
    converged = history[0] <= stop
    sweeps = 0
    inner_counts: list[int] = []
    while not converged and sweeps < max_sweeps:
        # fp32 correction solve A d = r.  The cast of r is the sweep's
        # only field-sized allocation; the correction starts from zero
        # (the standard refinement step), so no x0 is passed.
        inner = cg_solve(
            apply_A32, r.astype(np.float32), precond_diag=md32,
            tol=inner_tol, maxiter=maxiter, workspace=workspace32,
            dtype=np.float32,
        )
        np.add(x, inner.x, out=x)  # fp64 accumulation of the update
        apply_into(x, ap)
        np.subtract(b, ap, out=r)  # TRUE residual, recomputed in fp64
        res_norm = float(np.sqrt(fused_dot(r, r)))
        sweeps += 1
        inner_counts.append(int(inner.iterations))
        converged = res_norm <= stop
        if not converged and res_norm >= history[-1]:
            # fp32 can no longer reduce the fp64 residual (conditioning
            # exceeds what single precision resolves); stop burning
            # sweeps and report honestly instead of looping to the cap.
            history.append(res_norm)
            break
        history.append(res_norm)

    return MixedCGResult(
        x=x.copy() if workspace is not None else x,
        iterations=sum(inner_counts),
        converged=converged,
        residual_norm=history[-1],
        residual_history=tuple(history),
        sweeps=sweeps,
        inner_iterations=tuple(inner_counts),
    )


def cg_solve_batched_mixed(
    apply_A: Operator,
    apply_A32: Operator,
    b: NDArray[np.float64],
    x0: NDArray[np.float64] | None = None,
    precond_diag: NDArray[np.float64] | None = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    workspace: "SolverWorkspace | None" = None,
    workspace32: "SolverWorkspace | None" = None,
    inner_tol: float = MIXED_INNER_TOL,
    max_sweeps: int = MIXED_MAX_SWEEPS,
) -> BatchedMixedCGResult:
    """Mixed-precision refinement over a stacked ``(B, n)`` block.

    The batched twin of :func:`cg_solve_mixed`: each sweep runs one
    :func:`cg_solve_batched` fp32 correction solve over the whole block
    (with per-system ``tol``/``maxiter`` honored by the inner loop),
    then recomputes every system's true fp64 residual with a single
    batched operator application.  Systems that have met their fp64
    criterion are frozen exactly — their correction rhs is zeroed, the
    inner loop leaves them at zero iterations, and their fp64 iterate
    never moves — so a system refined inside a block finishes
    bit-identically to the same system refined alone (given the
    batched/sequential bit-identity of the underlying kernels).

    Parameters are as :func:`cg_solve_mixed`, with ``tol``/``maxiter``
    optionally ``(B,)`` arrays (per-request tolerances / inner caps,
    exactly as :func:`cg_solve_batched` accepts).
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2:
        raise ValueError(f"batched rhs must be (B, n), got shape {b.shape}")
    nb, n = b.shape
    if nb < 1:
        raise ValueError("batched rhs needs at least one system")
    tol_arr = np.asarray(tol, dtype=np.float64)
    if tol_arr.ndim not in (0, 1) or (
        tol_arr.ndim == 1 and tol_arr.shape != (nb,)
    ):
        raise ValueError(
            f"tol must be a scalar or ({nb},), got shape {tol_arr.shape}"
        )
    if not np.all(np.isfinite(tol_arr)):
        raise ValueError("tol entries must be finite")
    miter = np.asarray(maxiter, dtype=np.int64)
    if miter.ndim not in (0, 1) or (
        miter.ndim == 1 and miter.shape != (nb,)
    ):
        raise ValueError(
            f"maxiter must be a scalar or ({nb},), got shape {miter.shape}"
        )
    if miter.size and miter.min() < 0:
        raise ValueError("maxiter entries must be >= 0")
    if max_sweeps < 1:
        raise ValueError(f"max_sweeps must be >= 1, got {max_sweeps}")
    if workspace is not None:
        workspace.require_batch(nb)
        workspace.require_global(n)
        if workspace.cg_x.dtype != np.float64:
            raise ValueError(
                f"outer workspace must be fp64, got {workspace.cg_x.dtype}"
            )
        x, r, ap, tmp = (
            buf.reshape(nb, -1) for buf in (
                workspace.cg_x, workspace.cg_r, workspace.cg_ap,
                workspace.cg_tmp,
            )
        )
        res, stop = workspace.cg_res, workspace.cg_stop
        active = workspace.cg_active
    else:
        x, r, ap, tmp = (np.empty_like(b) for _ in range(4))
        res, stop = np.empty(nb), np.empty(nb)
        active = np.empty(nb, dtype=bool)
    md32 = None
    if precond_diag is not None:
        md = np.asarray(precond_diag, dtype=np.float64)
        if md.shape not in ((n,), (nb, n)):
            raise ValueError(
                f"preconditioner shape {md.shape} must be ({n},) "
                f"or {(nb, n)}"
            )
        if np.any(md <= 0):
            raise ValueError("Jacobi preconditioner has non-positive entries")
        md32 = md.astype(np.float32)

    out_ok = _operator_accepts_out(apply_A)

    @hot_path
    def apply_into(vec: NDArray[np.float64], dst: NDArray[np.float64]) -> None:
        res_arr = apply_A(vec, out=dst) if out_ok else apply_A(vec)
        if res_arr is not dst:
            np.copyto(dst, res_arr)

    @hot_path
    def row_dots(
        a_vec: NDArray[np.float64],
        b_vec: NDArray[np.float64],
        dst: NDArray[np.float64],
    ) -> None:
        np.multiply(a_vec, b_vec, out=tmp)
        np.sum(tmp, axis=1, out=dst, dtype=np.float64)

    if x0 is None:
        x.fill(0.0)
        np.copyto(r, b)
    else:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != b.shape:
            raise ValueError(f"x0 shape {x0.shape} != b shape {b.shape}")
        np.copyto(x, x0)
        apply_into(x, ap)
        np.subtract(b, ap, out=r)
    row_dots(b, b, stop)
    np.sqrt(stop, out=stop)
    stop[...] = tol_arr * np.where(stop > 0, stop, 1.0)

    row_dots(r, r, res)
    np.sqrt(res, out=res)
    np.greater(res, stop, out=active)
    if miter.ndim:
        active &= miter > 0  # zero-cap requests never start refining

    sweeps_arr = np.zeros(nb, dtype=np.int64)
    iterations = np.zeros(nb, dtype=np.int64)
    inner_hist: list[NDArray[np.int64]] = []
    history = [res.copy()]
    prev_res = res.copy()
    sweep = 0
    while bool(np.any(active)) and sweep < max_sweeps:
        r32 = r.astype(np.float32)
        r32[~active] = 0.0  # frozen systems: zero rhs => zero correction
        inner = cg_solve_batched(
            apply_A32, r32, precond_diag=md32, tol=inner_tol,
            maxiter=miter, workspace=workspace32, dtype=np.float32,
        )
        np.add(x, inner.x, out=x)  # frozen rows add exact zero
        apply_into(x, ap)
        np.subtract(b, ap, out=r)
        row_dots(r, r, res)
        np.sqrt(res, out=res)
        sweep += 1
        sweep_iters = np.where(active, inner.iterations, 0).astype(np.int64)
        iterations += sweep_iters
        inner_hist.append(sweep_iters)
        history.append(res.copy())
        newly_done = active & (res <= stop)
        sweeps_arr[newly_done] = sweep
        active &= ~newly_done
        # Per-system stall guard, mirroring the unbatched path.
        stalled = active & (res >= prev_res)
        sweeps_arr[stalled] = sweep
        active &= ~stalled
        np.copyto(prev_res, res)

    sweeps_arr[active] = sweep  # systems that hit the sweep cap
    return BatchedMixedCGResult(
        x=x.copy() if workspace is not None else x,
        iterations=iterations,
        converged=res <= stop,
        residual_norm=res.copy(),
        residual_history=np.stack(history),
        sweeps=sweeps_arr,
        inner_iterations=(
            np.stack(inner_hist)
            if inner_hist else np.zeros((0, nb), dtype=np.int64)
        ),
    )
