"""Gauss-Lobatto-Legendre (GLL) quadrature nodes and weights.

The SEM of the paper collocates the solution on the ``N+1`` GLL points per
direction; mass matrices become diagonal and the stiffness application
reduces to the tensor-product kernel of Listing 1.

The rule with ``N+1`` nodes integrates polynomials up to degree ``2N - 1``
exactly, nodes include the endpoints ``±1``, and the weights are
``w_i = 2 / (N (N+1) L_N(x_i)^2)``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from numpy.typing import NDArray

from repro.sem.legendre import legendre, q_and_evaluations

_NEWTON_TOL = 1e-15
_NEWTON_MAXIT = 100


def _gll_points(n_points: int) -> NDArray[np.float64]:
    """Compute the ``n_points`` GLL nodes on [-1, 1] (ascending)."""
    n = n_points - 1  # polynomial degree
    if n == 1:
        return np.array([-1.0, 1.0])
    # Chebyshev-Gauss-Lobatto initial guess, excellent for Newton on q.
    x = -np.cos(np.pi * np.arange(1, n) / n)
    for _ in range(_NEWTON_MAXIT):
        q, qp, _ = q_and_evaluations(n, x)
        dx = q / qp
        x = x - dx
        if np.max(np.abs(dx)) < _NEWTON_TOL:
            break
    pts = np.concatenate(([-1.0], x, [1.0]))
    # Enforce exact antisymmetry (the rule is symmetric about the origin).
    pts = 0.5 * (pts - pts[::-1])
    return pts


@lru_cache(maxsize=64)
def _gll_cached(n_points: int) -> tuple[tuple[float, ...], tuple[float, ...]]:
    n = n_points - 1
    pts = _gll_points(n_points)
    ln = legendre(n, pts)
    wts = 2.0 / (n * (n + 1) * ln * ln)
    return tuple(pts.tolist()), tuple(wts.tolist())


def gll_points_and_weights(n_points: int) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Return the ``n_points``-node GLL rule ``(points, weights)``.

    Parameters
    ----------
    n_points:
        Number of quadrature nodes, ``N + 1`` in the paper's notation;
        must be at least 2 (the rule always contains both endpoints).

    Returns
    -------
    points:
        Ascending nodes in ``[-1, 1]`` with ``points[0] == -1`` and
        ``points[-1] == 1``.
    weights:
        Positive weights summing to 2.

    Notes
    -----
    Results are cached per ``n_points``; callers receive fresh arrays and
    may mutate them freely.
    """
    if n_points < 2:
        raise ValueError(f"GLL rule needs at least 2 points, got {n_points}")
    pts, wts = _gll_cached(n_points)
    return np.array(pts), np.array(wts)


def gll_points(n_points: int) -> NDArray[np.float64]:
    """Return only the GLL nodes (see :func:`gll_points_and_weights`)."""
    return gll_points_and_weights(n_points)[0]


def gll_weights(n_points: int) -> NDArray[np.float64]:
    """Return only the GLL weights (see :func:`gll_points_and_weights`)."""
    return gll_points_and_weights(n_points)[1]


def integrate(values: NDArray[np.float64], weights: NDArray[np.float64]) -> float:
    """Apply a 1-D quadrature rule: ``sum_i w_i f(x_i)``."""
    v = np.asarray(values, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if v.shape != w.shape:
        raise ValueError(f"shape mismatch: values {v.shape} vs weights {w.shape}")
    return float(np.dot(w, v))
