"""The matrix-free local Poisson operator ``Ax`` (paper Listing 1).

Three functionally identical implementations are provided:

* :func:`ax_local_listing1` — a literal Python port of the paper's C code
  (same loop structure, same flattened indexing, same accumulation order).
  Slow; the ground truth for the test-suite and for the accelerator
  simulator's numerics.
* :func:`ax_local` — the einsum NumPy implementation (tensor
  contractions, vectorized over elements), the library's historical
  "CPU baseline" kernel.
* :func:`ax_local_dense` — applies the densely assembled element matrix;
  only feasible for small ``N``, used to verify symmetry/positive
  semi-definiteness and the matrix-free implementations.

The faster BLAS-backed hot-path kernel (``ax_local_matmul``) and the
registry that selects implementations by name live in
:mod:`repro.sem.kernels`.

All take local fields shaped ``(E, nx, nx, nx)`` (see
:mod:`repro.sem.mesh` for the index convention) and the geometric factors
``(E, 6, nx, nx, nx)`` in the ``(rr, rs, rt, ss, st, tt)`` order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import NDArray

from repro.sem.element import ReferenceElement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.sem.workspace import SolverWorkspace


def _check_shapes(
    ref: ReferenceElement, u: NDArray[np.float64], g: NDArray[np.float64]
) -> None:
    """Validate ``(E, nx, nx, nx)`` or batched ``(B, E, nx, nx, nx)`` fields.

    The geometry is always per-element, ``(E, 6, nx, nx, nx)`` — a
    batched field block shares it across all ``B`` systems.
    """
    nx = ref.n_points
    if u.ndim == 5:
        if u.shape[2:] != (nx, nx, nx):
            raise ValueError(
                f"batched u must be (B, E, {nx}, {nx}, {nx}), got {u.shape}"
            )
        num_e = u.shape[1]
    elif u.ndim == 4 and u.shape[1:] == (nx, nx, nx):
        num_e = u.shape[0]
    else:
        raise ValueError(f"u must be (E, {nx}, {nx}, {nx}), got {u.shape}")
    if g.shape != (num_e, 6, nx, nx, nx):
        raise ValueError(
            f"g must be ({num_e}, 6, {nx}, {nx}, {nx}), got {g.shape}"
        )


def ax_local(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    out: NDArray[np.float64] | None = None,
    workspace: "SolverWorkspace | None" = None,
) -> NDArray[np.float64]:
    """Vectorized ``w = D^T G D u`` per element (the paper's ``Ax``).

    Parameters
    ----------
    ref:
        Reference element providing the differentiation matrix ``D``.
    u:
        Input nodal fields, shape ``(E, nx, nx, nx)``, or a stacked
        multi-system block ``(B, E, nx, nx, nx)`` sharing one geometry.
    g:
        Geometric factors, shape ``(E, 6, nx, nx, nx)``.
    out:
        Optional preallocated output array (same shape as ``u``); the
        final transposed-derivative contractions accumulate directly
        into it, avoiding a separate result allocation per call.
    workspace:
        Optional :class:`~repro.sem.workspace.SolverWorkspace` supplying
        the six gradient work arrays and the elementwise scratch, making
        a warm call free of field-sized allocations.

    Returns
    -------
    ``w`` with the same shape as ``u``.
    """
    _check_shapes(ref, u, g)
    if out is not None and not out.flags.c_contiguous:
        # The einsum fast paths want a contiguous destination; compute
        # into a fresh contiguous result and copy once (mirrors
        # GatherScatter.gather's handling of non-contiguous ``out``).
        np.copyto(out, ax_local(ref, u, g, workspace=workspace))
        return out
    # A dtype-matched D keeps every contraction in the field's own
    # precision (an fp64 D against fp32 fields would silently promote
    # each einsum — or refuse to cast into an fp32 ``out``).
    d = ref.deriv_as(u.dtype)
    # One einsum spelling serves both layouts: "b" is the stacked-system
    # axis of a batched ``(B, E, ...)`` block, absent otherwise.
    pre = "b" if u.ndim == 5 else ""
    if workspace is not None:
        workspace.require_local(u.shape[-4], ref.n_points)
        if u.ndim == 5:
            # The workspace kernel scratch is single-system; sweep the
            # stacked block one system at a time through it (results are
            # identical to B separate calls).
            if out is None:
                out = np.empty_like(u)
            for b in range(u.shape[0]):
                ax_local(ref, u[b], g, out=out[b], workspace=workspace)
            return out
        # Slice the scratch row count to this field block (a batched
        # workspace may hold more rows for the fused kernel path).
        ne = u.shape[0]
        ur, us, ut = workspace.ur[:ne], workspace.us[:ne], workspace.ut[:ne]
        wr, ws, wt = workspace.wr[:ne], workspace.ws[:ne], workspace.wt[:ne]
        tmp = workspace.tmp[:ne]
        # Phase 1: reference-space gradient, into preallocated buffers.
        np.einsum(f"il,{pre}eljk->{pre}eijk", d, u, out=ur, optimize=True)
        np.einsum(f"jl,{pre}eilk->{pre}eijk", d, u, out=us, optimize=True)
        np.einsum(f"kl,{pre}eijl->{pre}eijk", d, u, out=ut, optimize=True)
        # Phase 2: symmetric geometric tensor, in place via one scratch.
        np.multiply(g[:, 0], ur, out=wr)
        np.multiply(g[:, 1], us, out=tmp)
        wr += tmp
        np.multiply(g[:, 2], ut, out=tmp)
        wr += tmp
        np.multiply(g[:, 1], ur, out=ws)
        np.multiply(g[:, 3], us, out=tmp)
        ws += tmp
        np.multiply(g[:, 4], ut, out=tmp)
        ws += tmp
        np.multiply(g[:, 2], ur, out=wt)
        np.multiply(g[:, 4], us, out=tmp)
        wt += tmp
        np.multiply(g[:, 5], ut, out=tmp)
        wt += tmp
        # Phase 3: transposed derivative accumulated into the output.
        if out is None:
            out = np.empty_like(u)
        np.einsum(f"li,{pre}eljk->{pre}eijk", d, wr, out=out, optimize=True)
        np.einsum(f"lj,{pre}eilk->{pre}eijk", d, ws, out=tmp, optimize=True)
        out += tmp
        np.einsum(f"lk,{pre}eijl->{pre}eijk", d, wt, out=tmp, optimize=True)
        out += tmp
        return out
    # Phase 1: reference-space gradient.
    ur = np.einsum(f"il,{pre}eljk->{pre}eijk", d, u, optimize=True)
    us = np.einsum(f"jl,{pre}eilk->{pre}eijk", d, u, optimize=True)
    ut = np.einsum(f"kl,{pre}eijl->{pre}eijk", d, u, optimize=True)
    # Phase 2: apply the symmetric geometric tensor.
    wr = g[:, 0] * ur + g[:, 1] * us + g[:, 2] * ut
    ws = g[:, 1] * ur + g[:, 3] * us + g[:, 4] * ut
    wt = g[:, 2] * ur + g[:, 4] * us + g[:, 5] * ut
    # Phase 3: transposed derivative (weak-form divergence), accumulated
    # directly into the output so ``out=`` really saves the allocation.
    if out is None:
        out = np.empty_like(u)
    np.einsum(f"li,{pre}eljk->{pre}eijk", d, wr, out=out, optimize=True)
    out += np.einsum(f"lj,{pre}eilk->{pre}eijk", d, ws, optimize=True)
    out += np.einsum(f"lk,{pre}eijl->{pre}eijk", d, wt, optimize=True)
    return out


def ax_local_listing1(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
) -> NDArray[np.float64]:
    """Literal port of Listing 1 (paper §II) — scalar loops, flat arrays.

    The C code stores ``u``/``w`` flattened per element with
    ``ijk = i + j*nx + k*nx*nx``, ``gxyz`` with stride 6 per node, and
    keeps ``dxt`` (= ``D``) and ``dx`` (= ``D^T``) as row-major ``nx*nx``
    arrays.  We reproduce that layout and the exact accumulation order so
    floating-point results match the hardware dataflow bit-for-bit.
    """
    _check_shapes(ref, u, g)
    nx = ref.n_points
    num_e = u.shape[0]
    # Listing 1 memory layout: dxt[l + i*nx] multiplies u(l, j, k) to give
    # the r-derivative at (i, j, k), hence dxt[row i, col l] = D[i, l];
    # dx[l + i*nx] = D^T[i, l] = D[l, i].
    dxt = ref.deriv.reshape(-1)            # row-major D
    dx = ref.deriv.T.copy().reshape(-1)    # row-major D^T
    u_flat = u.transpose(0, 3, 2, 1).reshape(num_e, -1)   # i fastest
    g_flat = g.transpose(0, 4, 3, 2, 1).reshape(num_e, -1, 6)  # [e, ijk, c]
    w_flat = np.zeros_like(u_flat)

    for e in range(num_e):
        ue = u_flat[e]
        ge = g_flat[e]
        shur = np.zeros(nx * nx * nx)
        shus = np.zeros(nx * nx * nx)
        shut = np.zeros(nx * nx * nx)
        for k in range(nx):
            for j in range(nx):
                for i in range(nx):
                    ij = i + j * nx
                    ijk = ij + k * nx * nx
                    rtmp = 0.0
                    stmp = 0.0
                    ttmp = 0.0
                    for l in range(nx):
                        rtmp += dxt[l + i * nx] * ue[l + j * nx + k * nx * nx]
                        stmp += dxt[l + j * nx] * ue[i + l * nx + k * nx * nx]
                        ttmp += dxt[l + k * nx] * ue[ij + l * nx * nx]
                    shur[ijk] = ge[ijk, 0] * rtmp + ge[ijk, 1] * stmp + ge[ijk, 2] * ttmp
                    shus[ijk] = ge[ijk, 1] * rtmp + ge[ijk, 3] * stmp + ge[ijk, 4] * ttmp
                    shut[ijk] = ge[ijk, 2] * rtmp + ge[ijk, 4] * stmp + ge[ijk, 5] * ttmp
        for k in range(nx):
            for j in range(nx):
                for i in range(nx):
                    ij = i + j * nx
                    ijk = ij + k * nx * nx
                    wijke = 0.0
                    for l in range(nx):
                        wijke += dx[l + i * nx] * shur[l + j * nx + k * nx * nx]
                        wijke += dx[l + j * nx] * shus[i + l * nx + k * nx * nx]
                        wijke += dx[l + k * nx] * shut[ij + l * nx * nx]
                    w_flat[e, ijk] = wijke
    return w_flat.reshape(num_e, nx, nx, nx).transpose(0, 3, 2, 1)


def ax_element_matrix(
    ref: ReferenceElement, g_e: NDArray[np.float64]
) -> NDArray[np.float64]:
    """Densely assemble the ``(nx^3, nx^3)`` element matrix ``A^e``.

    The paper stresses that forming ``A^e`` is prohibitively expensive in
    production — we do it anyway (for small ``N``) to verify the
    matrix-free kernels: ``A^e`` must be symmetric positive semi-definite
    with the constant vector in its null space.

    Parameters
    ----------
    ref:
        Reference element.
    g_e:
        Geometric factors of a single element, shape ``(6, nx, nx, nx)``.

    Returns
    -------
    Dense ``A^e`` in Listing-1 flat ordering (``i`` fastest).
    """
    nx = ref.n_points
    ndof = nx ** 3
    ident = np.eye(ndof)
    basis = ident.reshape(ndof, nx, nx, nx).transpose(0, 3, 2, 1)  # columns -> fields
    w = ax_local(ref, basis, np.broadcast_to(g_e[None], (ndof, 6, nx, nx, nx)))
    return w.transpose(0, 3, 2, 1).reshape(ndof, ndof).T


def ax_local_dense(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
) -> NDArray[np.float64]:
    """Apply the densely assembled ``A^e`` of every element (small N only)."""
    _check_shapes(ref, u, g)
    nx = ref.n_points
    num_e = u.shape[0]
    out = np.empty_like(u)
    for e in range(num_e):
        a = ax_element_matrix(ref, g[e])
        ue = u[e].transpose(2, 1, 0).reshape(-1)
        we = a @ ue
        out[e] = we.reshape(nx, nx, nx).transpose(2, 1, 0)
    return out


def helmholtz_local(
    ref: ReferenceElement,
    u: NDArray[np.float64],
    g: NDArray[np.float64],
    mass: NDArray[np.float64],
    lam: float = 1.0,
) -> NDArray[np.float64]:
    """BK5-style Helmholtz operator ``w = D^T G D u + lam * B u``.

    The paper notes that CEED's bake-off kernel BK5 "closely resembles the
    local Poisson operator, but also considers one more geometric factor";
    that extra factor is the collocation mass term ``B = w |J|`` which we
    add here with coefficient ``lam`` (``lam = 0`` recovers ``Ax``).

    Parameters
    ----------
    mass:
        Diagonal mass ``(E, nx, nx, nx)`` from :class:`~repro.sem.geometry.Geometry`.
    lam:
        Helmholtz coefficient (>= 0 keeps the operator SPD after masking).
    """
    w = ax_local(ref, u, g)
    if lam != 0.0:
        w = w + lam * mass * u
    return w


def ax_flops(n: int, num_elements: int) -> int:
    """Total FLOPs of one ``Ax`` application: ``(12(N+1)+15) * E * (N+1)^3``.

    Matches the paper's cost measure ``C(N)`` summed over adds and mults
    (see :mod:`repro.core.cost` for the split).
    """
    if n < 1:
        raise ValueError(f"degree must be >= 1, got {n}")
    if num_elements < 0:
        raise ValueError(f"element count must be >= 0, got {num_elements}")
    nx = n + 1
    return (12 * nx + 15) * num_elements * nx ** 3
