"""Gather-scatter (direct-stiffness summation) between local and global DOFs.

SEM solvers like Nek5000 keep fields element-local with redundant interface
values; the gather-scatter operator ``QQ^T`` sums local contributions into
shared global nodes and redistributes the result.  The paper lists this
phase among the solver components surrounding the ``Ax`` kernel.

The operator precomputes everything it can at construction so the solver
inner loop touches no setup work:

* a stable sort permutation of the local-to-global map plus the segment
  boundaries of each global node, so ``gather`` is a permuted copy
  followed by one ``np.add.reduceat`` segment sum (replacing a
  per-call ``np.bincount``);
* the node multiplicities and their inverses, so the Nekbone ``glsc3``
  inner product (:meth:`GatherScatter.dot`) is a single fused
  three-operand reduction with no temporaries.

``gather``/``scatter`` accept ``out=`` so the allocation-free solver path
(:mod:`repro.sem.workspace`) can reuse preallocated buffers, and both
accept stacked ``(B, ...)`` blocks — one permuted copy and one segment
sum serve all ``B`` systems of a batched multi-RHS solve.  The cached
scratch makes the instance non-thread-safe (like the buffers themselves).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from repro.sem.mesh import BoxMesh


@dataclass(frozen=True)
class SharedGatherScatter:
    """Picklable handle to a :meth:`GatherScatter.export_shared` export.

    Carries the :class:`~repro.sem.shared.SharedArrayManifest` of the
    operator's construction-time caches plus the scalar state
    (:attr:`n_global`, :attr:`local_shape`, the reduceat-eligibility
    flag) that :meth:`GatherScatter.attach_shared` needs to rebuild an
    instance without re-running the l2g sort.
    """

    arrays: object  # SharedArrayManifest (kept loose to avoid a cycle)
    n_global: int
    local_shape: tuple[int, int, int, int]
    dense: bool


@dataclass(frozen=True)
class GatherScatter:
    """Bound gather-scatter operator for a fixed mesh topology.

    Attributes
    ----------
    l2g_flat:
        Flattened local-to-global map, shape ``(E * nx^3,)``.
    n_global:
        Number of global (unique) nodes.
    local_shape:
        ``(E, nx, nx, nx)`` shape of local fields.
    dtype:
        Floating dtype of the operator's float caches (multiplicities,
        inverse-multiplicity weights, permutation scratch) and of the
        vectors it allocates.  The integer sort caches (``l2g_flat``,
        permutation, segment starts) are dtype-independent and shared
        across precisions via :meth:`as_dtype`.
    """

    l2g_flat: NDArray[np.int64]
    n_global: int
    local_shape: tuple[int, int, int, int]
    dtype: "np.dtype | type" = field(default=np.float64, compare=False)
    # Construction-time caches (set via object.__setattr__; frozen class).
    _perm: NDArray[np.int64] = field(init=False, repr=False, compare=False)
    _seg_starts: NDArray[np.int64] = field(
        init=False, repr=False, compare=False
    )
    _mult: NDArray[np.float64] = field(init=False, repr=False, compare=False)
    _inv_mult_local: NDArray[np.float64] = field(
        init=False, repr=False, compare=False
    )
    _sorted_scratch: NDArray[np.float64] = field(
        init=False, repr=False, compare=False
    )
    _batch_scratch: dict = field(init=False, repr=False, compare=False)
    _dense: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Validate once here: gather/scatter use mode="clip" fast paths
        # that assume every index is in range.
        if self.l2g_flat.size and (
            self.l2g_flat.min() < 0 or self.l2g_flat.max() >= self.n_global
        ):
            raise ValueError(
                f"l2g map references nodes outside [0, {self.n_global})"
            )
        dtype = np.dtype(self.dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"dtype must be float64 or float32, got {dtype}"
            )
        object.__setattr__(self, "dtype", dtype)
        counts = np.bincount(self.l2g_flat, minlength=self.n_global)
        # Multiplicities honor the owning dtype (a bare astype(float)
        # here used to pin them fp64, silently promoting every fp32
        # kernel touching them); the reciprocals are computed in fp64
        # and *rounded once* to the target, never accumulated in it.
        mult64 = counts.astype(np.float64)
        # The reduceat fast path needs every global node to own at least
        # one local slot (reduceat cannot represent empty segments); a
        # BoxMesh always satisfies this, hand-built maps may not.
        dense = bool(np.all(counts > 0))
        perm = np.argsort(self.l2g_flat, kind="stable")
        seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        safe_mult = np.where(mult64 > 0, mult64, 1.0)
        inv_mult_local64 = (1.0 / safe_mult)[self.l2g_flat]
        for name, value in (
            ("_perm", perm),
            ("_seg_starts", seg_starts),
            ("_mult", mult64.astype(dtype, copy=False)),
            (
                "_inv_mult_local",
                inv_mult_local64.astype(dtype, copy=False),
            ),
            ("_sorted_scratch", np.empty(self.l2g_flat.shape[0], dtype)),
            ("_batch_scratch", {}),
            ("_dense", dense),
        ):
            object.__setattr__(self, name, value)

    @classmethod
    def from_mesh(
        cls, mesh: BoxMesh, dtype: "np.dtype | type" = np.float64
    ) -> "GatherScatter":
        """Build the operator from a mesh's connectivity."""
        return cls(
            l2g_flat=mesh.l2g.reshape(-1),
            n_global=mesh.n_global,
            local_shape=mesh.l2g.shape,
            dtype=dtype,
        )

    def as_dtype(self, dtype: "np.dtype | type") -> "GatherScatter":
        """A twin of this operator whose float caches live in ``dtype``.

        The integer sort caches (l2g map, permutation, segment starts)
        are shared with ``self``; the multiplicities and inverse weights
        are cast *once* and the per-call scratch is freshly allocated in
        the target dtype.  Twins are cached per dtype, so the mixed
        solve path resolves its fp32 operator with a dict lookup — and
        like :meth:`replicate`, each replica builds its own twins (the
        scratch is mutable, so twins must not leak across replicas).
        """
        dtype = np.dtype(dtype)
        if dtype == self.dtype:
            return self
        twins: dict | None = getattr(self, "_dtype_twins", None)
        if twins is None:
            twins = {}
            object.__setattr__(self, "_dtype_twins", twins)
        twin = twins.get(dtype.str)
        if twin is None:
            twin = copy.copy(self)
            for name, value in (
                ("dtype", dtype),
                ("_mult", self._mult.astype(dtype, copy=False)),
                (
                    "_inv_mult_local",
                    self._inv_mult_local.astype(dtype, copy=False),
                ),
                (
                    "_sorted_scratch",
                    np.empty(self.l2g_flat.shape[0], dtype),
                ),
                ("_batch_scratch", {}),
                ("_dtype_twins", {}),
            ):
                object.__setattr__(twin, name, value)
            twins[dtype.str] = twin
        return twin

    def replicate(self) -> "GatherScatter":
        """A twin operator sharing the immutable caches, with fresh scratch.

        The sort permutation, segment boundaries and multiplicities are
        construction-time constants and safely shared between instances;
        the permutation scratch buffers are mutated per call, so each
        replica gets its own.  This is the cheap-clone primitive behind
        the problems' ``clone()``: ``K`` solve replicas pay the l2g sort
        once instead of ``K`` times.

        Returns
        -------
        GatherScatter
            A new instance that is safe to use concurrently with
            ``self`` (each owns private scratch; the shared caches are
            read-only).
        """
        # Shallow copy shares every cache by default (future fields
        # included); only the per-call scratch is replaced.  The class
        # is frozen, so the scratch overrides go through
        # object.__setattr__ like the construction-time caches do.
        twin = copy.copy(self)
        object.__setattr__(
            twin, "_sorted_scratch", np.empty_like(self._sorted_scratch)
        )
        object.__setattr__(twin, "_batch_scratch", {})
        # Dtype twins hold their own mutable scratch, so a replica must
        # not inherit the original's (as_dtype rebuilds them lazily).
        # Only detach when the lazy cache exists — replicas should carry
        # exactly the source's attribute set.
        if getattr(self, "_dtype_twins", None) is not None:
            object.__setattr__(twin, "_dtype_twins", {})
        return twin

    # ------------------------------------------------------------------
    # Shared-memory protocol (process-level sharding)
    # ------------------------------------------------------------------
    def export_shared(self) -> "tuple[object, SharedGatherScatter]":
        """Export the construction-time caches into one shared block.

        The l2g map, sort permutation, segment boundaries and (inverse)
        multiplicities are the operator's immutable state — together
        they rival the geometry in size (two ``E * nx^3`` int64 arrays
        plus two float arrays of the same length).  Worker processes
        attach them zero-copy via :meth:`attach_shared` instead of
        paying the stable sort ``K`` times.

        Returns
        -------
        (SharedMemory, SharedGatherScatter)
            The owning handle (``close()`` + ``unlink()`` is the
            caller's job) and the picklable handle workers attach from.
        """
        from repro.sem.shared import export_shared_arrays

        shm, manifest = export_shared_arrays({
            "l2g_flat": self.l2g_flat,
            "perm": self._perm,
            "seg_starts": self._seg_starts,
            "mult": self._mult,
            "inv_mult_local": self._inv_mult_local,
        })
        handle = SharedGatherScatter(
            arrays=manifest,
            n_global=self.n_global,
            local_shape=tuple(self.local_shape),
            dense=self._dense,
        )
        return shm, handle

    @classmethod
    def attach_shared(cls, handle: SharedGatherScatter) -> "GatherScatter":
        """Rebuild an operator over an exported block, zero-copy.

        Skips :meth:`__post_init__` entirely — no bincount, no argsort —
        and views the shared caches read-only; only the per-call
        permutation scratch is freshly allocated (it is mutable, so it
        must be private per process, exactly as in :meth:`replicate`).
        The shared mapping's lifetime is tied to the returned object.
        """
        from repro.sem.shared import attach_shared_arrays

        shm, views = attach_shared_arrays(handle.arrays)
        gs = cls.__new__(cls)
        for name, value in (
            ("l2g_flat", views["l2g_flat"]),
            ("n_global", int(handle.n_global)),
            ("local_shape", tuple(handle.local_shape)),
            ("_perm", views["perm"]),
            ("_seg_starts", views["seg_starts"]),
            ("dtype", views["mult"].dtype),
            ("_mult", views["mult"]),
            ("_inv_mult_local", views["inv_mult_local"]),
            (
                "_sorted_scratch",
                np.empty(views["l2g_flat"].shape[0], views["mult"].dtype),
            ),
            ("_batch_scratch", {}),
            ("_dense", bool(handle.dense)),
            ("_shm", shm),
        ):
            object.__setattr__(gs, name, value)
        return gs

    # ------------------------------------------------------------------
    def _batched_scratch(self, batch: int) -> NDArray[np.float64]:
        """Cached ``(batch, L)`` permutation scratch for stacked gathers.

        A single buffer sized for the largest batch ever seen is kept and
        sliced for smaller ones, so a service whose batch sizes vary
        (micro-batching fills whatever is pending) holds exactly one
        scratch array instead of one dead field-sized buffer per distinct
        batch size.
        """
        scratch = self._batch_scratch.get("buf")
        if scratch is None or scratch.shape[0] < batch:
            scratch = np.empty((batch, self.l2g_flat.shape[0]), self.dtype)
            self._batch_scratch["buf"] = scratch
        return scratch[:batch]

    def gather(
        self,
        local: NDArray[np.float64],
        out: NDArray[np.float64] | None = None,
    ) -> NDArray[np.float64]:
        """Sum local contributions into a global vector (``Q^T``).

        Parameters
        ----------
        local:
            Element-local field, shape ``local_shape``, or a stacked
            block ``(B,) + local_shape`` of independent systems.
        out:
            Optional preallocated global vector of length ``n_global``
            (``(B, n_global)`` for stacked input).

        Returns
        -------
        Global vector of length ``n_global`` (``(B, n_global)`` when
        stacked).
        """
        batched = local.ndim == len(self.local_shape) + 1
        if batched:
            if local.shape[1:] != self.local_shape:
                raise ValueError(
                    f"expected (B,) + {self.local_shape}, got {local.shape}"
                )
            out_shape: tuple[int, ...] = (local.shape[0], self.n_global)
        elif local.shape == self.local_shape:
            out_shape = (self.n_global,)
        else:
            raise ValueError(f"expected {self.local_shape}, got {local.shape}")
        if out is not None and out.shape != out_shape:
            raise ValueError(f"out must be {out_shape}, got {out.shape}")
        if out is not None and not out.flags.c_contiguous:
            # A non-contiguous ``out`` cannot back the take/reduceat fast
            # paths; compute into a contiguous result and copy once
            # (mirrors ax_local_matmul's handling of non-contiguous out).
            np.copyto(out, self.gather(local))
            return out
        if not self._dense:
            # Sparse maps (some global ids unused) fall back to bincount.
            rows = local.reshape(out_shape[:-1] + (-1,))
            if batched:
                summed = np.stack([
                    np.bincount(
                        self.l2g_flat, weights=row, minlength=self.n_global
                    )
                    for row in rows
                ])
            else:
                summed = np.bincount(
                    self.l2g_flat, weights=rows, minlength=self.n_global
                )
            # bincount accumulates (correctly) in fp64; round once to
            # the owning dtype rather than leaking fp64 into the caller.
            summed = summed.astype(self.dtype, copy=False)
            if out is None:
                return summed
            np.copyto(out, summed)
            return out
        if out is None:
            out = np.empty(out_shape, self.dtype)
        # mode="clip" skips numpy's defensive full-size bounce buffer;
        # the permutation is construction-time valid, so it never clips.
        if batched:
            # One permuted copy + one segment sum for all B systems: the
            # permutation/index traffic is paid once per block.
            scratch = self._batched_scratch(local.shape[0])
            np.take(
                local.reshape(local.shape[0], -1), self._perm, axis=1,
                out=scratch, mode="clip",
            )
            np.add.reduceat(scratch, self._seg_starts, axis=1, out=out)
            return out
        np.take(
            local.reshape(-1), self._perm, out=self._sorted_scratch,
            mode="clip",
        )
        np.add.reduceat(self._sorted_scratch, self._seg_starts, out=out)
        return out

    def scatter(
        self,
        global_vec: NDArray[np.float64],
        out: NDArray[np.float64] | None = None,
    ) -> NDArray[np.float64]:
        """Copy global values out to element-local storage (``Q``).

        Accepts a single global vector ``(n_global,)`` or a stacked
        block ``(B, n_global)`` (returning ``(B,) + local_shape``).
        """
        if global_vec.ndim == 2 and global_vec.shape[1] == self.n_global:
            out_shape: tuple[int, ...] = (
                global_vec.shape[0],
            ) + self.local_shape
            if out is None:
                return global_vec[:, self.l2g_flat].reshape(out_shape)
            if out.shape != out_shape:
                raise ValueError(f"out must be {out_shape}, got {out.shape}")
            if not out.flags.c_contiguous:
                # ``out.reshape`` would silently *copy* for a
                # non-contiguous target, dropping the result; take into
                # the contiguous scratch and copy once instead.
                scratch = self._batched_scratch(global_vec.shape[0])
                np.take(
                    global_vec, self.l2g_flat, axis=1, out=scratch,
                    mode="clip",
                )
                np.copyto(out, scratch.reshape(out_shape))
                return out
            np.take(
                global_vec, self.l2g_flat, axis=1,
                out=out.reshape(global_vec.shape[0], -1), mode="clip",
            )
            return out
        if global_vec.shape != (self.n_global,):
            raise ValueError(
                f"expected ({self.n_global},), got {global_vec.shape}"
            )
        if out is None:
            return global_vec[self.l2g_flat].reshape(self.local_shape)
        if out.shape != self.local_shape:
            raise ValueError(
                f"out must be {self.local_shape}, got {out.shape}"
            )
        if not out.flags.c_contiguous:
            # Same hazard as the batched branch: reshape of a
            # non-contiguous ``out`` is a copy, not a view.
            np.take(
                global_vec, self.l2g_flat, out=self._sorted_scratch,
                mode="clip",
            )
            np.copyto(out, self._sorted_scratch.reshape(self.local_shape))
            return out
        np.take(global_vec, self.l2g_flat, out=out.reshape(-1), mode="clip")
        return out

    def gs(self, local: NDArray[np.float64]) -> NDArray[np.float64]:
        """Round-trip ``Q Q^T`` — the classic SEM direct-stiffness sum."""
        return self.scatter(self.gather(local))

    # ------------------------------------------------------------------
    def multiplicity(self) -> NDArray[np.float64]:
        """Global node multiplicities (how many elements touch each node).

        Precomputed at construction; a copy is returned so callers can
        safely modify it.
        """
        return self._mult.copy()

    def dot(self, a: NDArray[np.float64], b: NDArray[np.float64]) -> float:
        """Global inner product of two *local* redundant fields.

        Interface values are weighted by the inverse multiplicity so each
        global DOF is counted exactly once — Nekbone's ``glsc3`` pattern.
        The weights are cached at construction and the triple product is
        one fused reduction (no per-call ``bincount`` or temporaries).
        An fp32 twin still accumulates the reduction in fp64: inner
        products steer convergence decisions, so only the *storage* of
        the operands drops precision, never the sum itself.
        """
        if self._inv_mult_local.dtype == np.float64:
            return float(
                np.einsum(
                    "i,i,i->",
                    a.reshape(-1), self._inv_mult_local, b.reshape(-1),
                )
            )
        return float(
            np.einsum(
                "i,i,i->",
                a.reshape(-1), self._inv_mult_local, b.reshape(-1),
                dtype=np.float64,
            )
        )
