"""Gather-scatter (direct-stiffness summation) between local and global DOFs.

SEM solvers like Nek5000 keep fields element-local with redundant interface
values; the gather-scatter operator ``QQ^T`` sums local contributions into
shared global nodes and redistributes the result.  The paper lists this
phase among the solver components surrounding the ``Ax`` kernel.

This implementation works on a :class:`~repro.sem.mesh.BoxMesh`'s
local-to-global map using ``np.add.at`` (scatter-add) and fancy indexing
(gather), which are the vectorized equivalents recommended by the HPC
Python guides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.sem.mesh import BoxMesh


@dataclass(frozen=True)
class GatherScatter:
    """Bound gather-scatter operator for a fixed mesh topology.

    Attributes
    ----------
    l2g_flat:
        Flattened local-to-global map, shape ``(E * nx^3,)``.
    n_global:
        Number of global (unique) nodes.
    local_shape:
        ``(E, nx, nx, nx)`` shape of local fields.
    """

    l2g_flat: NDArray[np.int64]
    n_global: int
    local_shape: tuple[int, int, int, int]

    @classmethod
    def from_mesh(cls, mesh: BoxMesh) -> "GatherScatter":
        """Build the operator from a mesh's connectivity."""
        return cls(
            l2g_flat=mesh.l2g.reshape(-1),
            n_global=mesh.n_global,
            local_shape=mesh.l2g.shape,
        )

    # ------------------------------------------------------------------
    def gather(self, local: NDArray[np.float64]) -> NDArray[np.float64]:
        """Sum local contributions into a global vector (``Q^T``).

        Parameters
        ----------
        local:
            Element-local field, shape ``local_shape``.

        Returns
        -------
        Global vector of length ``n_global``.
        """
        if local.shape != self.local_shape:
            raise ValueError(f"expected {self.local_shape}, got {local.shape}")
        return np.bincount(
            self.l2g_flat, weights=local.reshape(-1), minlength=self.n_global
        )

    def scatter(self, global_vec: NDArray[np.float64]) -> NDArray[np.float64]:
        """Copy global values out to element-local storage (``Q``)."""
        if global_vec.shape != (self.n_global,):
            raise ValueError(
                f"expected ({self.n_global},), got {global_vec.shape}"
            )
        return global_vec[self.l2g_flat].reshape(self.local_shape)

    def gs(self, local: NDArray[np.float64]) -> NDArray[np.float64]:
        """Round-trip ``Q Q^T`` — the classic SEM direct-stiffness sum."""
        return self.scatter(self.gather(local))

    # ------------------------------------------------------------------
    def multiplicity(self) -> NDArray[np.float64]:
        """Global node multiplicities (how many elements touch each node)."""
        return np.bincount(self.l2g_flat, minlength=self.n_global).astype(float)

    def dot(self, a: NDArray[np.float64], b: NDArray[np.float64]) -> float:
        """Global inner product of two *local* redundant fields.

        Interface values are weighted by the inverse multiplicity so each
        global DOF is counted exactly once — Nekbone's ``glsc3`` pattern.
        """
        inv_mult = 1.0 / self.multiplicity()
        wa = a.reshape(-1) * inv_mult[self.l2g_flat]
        return float(np.dot(wa, b.reshape(-1)))
