"""Spectral Element Method numerics substrate (paper §II).

Everything needed to *run* the paper's kernel and the surrounding solver on
a laptop: GLL quadrature, spectral differentiation, hexahedral meshes,
geometric factors, the matrix-free local Poisson operator (Listing 1), the
BK5-style Helmholtz variant, gather-scatter, and preconditioned CG.
"""

from repro.sem.legendre import legendre, legendre_prime
from repro.sem.quadrature import (
    gll_points_and_weights,
    gll_points,
    gll_weights,
    integrate,
)
from repro.sem.basis import (
    barycentric_weights,
    lagrange_basis_matrix,
    interpolate,
    interpolation_matrix,
)
from repro.sem.derivative import derivative_matrix, derivative_matrix_general
from repro.sem.element import ReferenceElement
from repro.sem.mesh import BoxMesh, flatten_local, unflatten_local
from repro.sem.geometry import (
    Geometry,
    geometric_factors,
    affine_geometric_factors,
    reference_gradient,
    G_COMPONENTS,
)
from repro.sem.operators import (
    ax_local,
    ax_local_listing1,
    ax_local_dense,
    ax_element_matrix,
    helmholtz_local,
    ax_flops,
)
from repro.sem.gather_scatter import GatherScatter
from repro.sem.kernels import (
    ax_local_matmul,
    ax_kernel_name,
    get_ax_kernel,
    register_ax_kernel,
    available_ax_kernels,
    resolve_ax_backend,
    DEFAULT_AX_KERNEL,
)
from repro.sem.workspace import SolverWorkspace
from repro.sem.poisson import PoissonProblem, sine_manufactured
from repro.sem.cg import cg_solve, cg_solve_batched, CGResult, BatchedCGResult
from repro.sem.helmholtz import HelmholtzProblem, cosine_manufactured
from repro.sem.nekbone import (
    NekboneCase,
    NekboneReport,
    element_sweep,
)
from repro.sem.shared import (
    SharedArrayManifest,
    SlotRing,
    SlotRingManifest,
    attach_shared_arrays,
    export_shared_arrays,
)
from repro.sem.spec import (
    ProblemSpec,
    SharedProblemExport,
    problem_spec,
    export_shared_problem,
    rebuild,
)

__all__ = [
    "legendre",
    "legendre_prime",
    "gll_points_and_weights",
    "gll_points",
    "gll_weights",
    "integrate",
    "barycentric_weights",
    "lagrange_basis_matrix",
    "interpolate",
    "interpolation_matrix",
    "derivative_matrix",
    "derivative_matrix_general",
    "ReferenceElement",
    "BoxMesh",
    "flatten_local",
    "unflatten_local",
    "Geometry",
    "geometric_factors",
    "affine_geometric_factors",
    "reference_gradient",
    "G_COMPONENTS",
    "ax_local",
    "ax_local_listing1",
    "ax_local_dense",
    "ax_element_matrix",
    "helmholtz_local",
    "ax_flops",
    "ax_local_matmul",
    "ax_kernel_name",
    "get_ax_kernel",
    "register_ax_kernel",
    "available_ax_kernels",
    "resolve_ax_backend",
    "DEFAULT_AX_KERNEL",
    "SolverWorkspace",
    "GatherScatter",
    "PoissonProblem",
    "sine_manufactured",
    "cg_solve",
    "cg_solve_batched",
    "CGResult",
    "BatchedCGResult",
    "HelmholtzProblem",
    "cosine_manufactured",
    "NekboneCase",
    "NekboneReport",
    "element_sweep",
    "SharedArrayManifest",
    "SlotRing",
    "SlotRingManifest",
    "attach_shared_arrays",
    "export_shared_arrays",
    "ProblemSpec",
    "SharedProblemExport",
    "problem_spec",
    "export_shared_problem",
    "rebuild",
]
