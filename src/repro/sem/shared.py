"""Shared-memory export/attach of the SEM layer's immutable arrays.

The paper's core observation is that SEM throughput is bound by how well
the memory system is exploited, not by FLOPs — and the serving analogue
of that observation is that a fleet of worker *processes* should share
one physical copy of the large immutable state (geometric factors,
gather-scatter sort caches, nodal coordinates) rather than rebuild or
duplicate it per worker.  This module is the substrate for that sharing:

* :func:`export_shared_arrays` packs a dict of numpy arrays into one
  POSIX shared-memory block (:class:`multiprocessing.shared_memory.
  SharedMemory`) and returns a **picklable** :class:`SharedArrayManifest`
  describing where each array lives;
* :func:`attach_shared_arrays` maps the block in any process and
  returns zero-copy, read-only numpy views onto the same physical pages.

Ownership protocol
------------------
The *exporting* process owns the block: it keeps the returned
``SharedMemory`` handle and must eventually ``close()`` + ``unlink()``
it (:class:`repro.sem.spec.SharedProblemExport` and
:class:`repro.serve.procshard.ProcessShardedSolveService` do this on
``close``).  *Attaching* processes only ever ``close()`` their mapping —
:func:`attach_shared_arrays` unregisters the attachment from the
``multiprocessing`` resource tracker so a worker exiting can never tear
the block down under the exporter (the stdlib tracker would otherwise
unlink segments it saw, destroying the fleet's shared state when the
first worker dies).

Attached views are marked non-writeable: the shared state is immutable
by contract, and a stray in-place write in one worker corrupting every
other worker's geometry is exactly the class of bug the flag turns into
an immediate ``ValueError``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np
from numpy.typing import NDArray

#: Byte alignment of each packed array inside a block (cache-line sized,
#: so attached views start aligned like a fresh np.empty would).
_ALIGN: int = 64


@dataclass(frozen=True)
class SharedArrayManifest:
    """Picklable description of arrays packed into one shared block.

    Attributes
    ----------
    block:
        The ``SharedMemory`` name (the file under ``/dev/shm`` on
        Linux); every attacher maps this one block.
    nbytes:
        Total block size in bytes.
    entries:
        One ``(key, offset, shape, dtype_str)`` record per packed
        array, in packing order.
    creator_pid:
        PID of the exporting process.  Attaches from *other* processes
        are untracked from the resource tracker (they must never unlink
        the block); an attach inside the exporting process keeps the
        exporter's own tracker registration intact.
    """

    block: str
    nbytes: int
    entries: tuple[tuple[str, int, tuple[int, ...], str], ...]
    creator_pid: int = -1

    @property
    def keys(self) -> tuple[str, ...]:
        """The packed array names, in packing order."""
        return tuple(key for key, _, _, _ in self.entries)


def _aligned(offset: int) -> int:
    """Round ``offset`` up to the next :data:`_ALIGN` boundary."""
    return -(-offset // _ALIGN) * _ALIGN


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove an *attached* block from this process's resource tracker.

    The stdlib registers every ``SharedMemory`` with the
    ``multiprocessing`` resource tracker, which unlinks whatever it
    tracked when the process exits.  That is correct for the exporting
    owner and catastrophic for attachers: a worker exiting (or crashing)
    would destroy the block every other worker is still mapping.  Only
    the exporter may unlink; attachers are untracked here.
    """
    try:  # pragma: no cover - exercised indirectly; stdlib-internal name
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        # Tracker layouts differ across Python patch versions; failing
        # to untrack degrades to a spurious unlink warning at worker
        # exit, never to corruption.
        pass


def unlink_shared_block(shm: shared_memory.SharedMemory) -> None:
    """Unlink an exported block, keeping the resource tracker balanced.

    Worker attaches may have stripped the name from a *shared* tracker
    (spawned children inherit the exporter's tracker process, where
    registrations dedupe into one set — see :func:`_untrack`), in which
    case a bare ``unlink()`` would make the tracker log a spurious
    ``KeyError``.  Re-registering first is idempotent when the entry
    survived and restores it when it didn't, so the unlink's internal
    unregistration always finds its entry.  ``FileNotFoundError`` (an
    already-unlinked block) is swallowed — unlink is idempotent here.
    """
    try:  # pragma: no cover - stdlib-internal name, see _untrack
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def export_shared_arrays(
    arrays: "dict[str, NDArray]",
) -> tuple[shared_memory.SharedMemory, SharedArrayManifest]:
    """Pack ``arrays`` into one newly created shared-memory block.

    Parameters
    ----------
    arrays:
        ``{key: array}`` to export.  Each array is copied once into the
        block (C-contiguous); the originals are left untouched.

    Returns
    -------
    (SharedMemory, SharedArrayManifest)
        The owning handle (caller must eventually ``close()`` +
        ``unlink()`` it) and the picklable manifest attachers consume.

    Raises
    ------
    ValueError
        If ``arrays`` is empty (an empty export is always a caller bug).
    """
    if not arrays:
        raise ValueError("export_shared_arrays needs at least one array")
    packed: list[tuple[str, int, tuple[int, ...], str, NDArray]] = []
    offset = 0
    for key, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = _aligned(offset)
        packed.append((key, offset, arr.shape, arr.dtype.str, arr))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        for key, off, shape, dtype_str, arr in packed:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=off
            )
            view[...] = arr
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    manifest = SharedArrayManifest(
        block=shm.name,
        nbytes=shm.size,
        entries=tuple(
            (key, off, tuple(shape), dtype_str)
            for key, off, shape, dtype_str, _ in packed
        ),
        creator_pid=os.getpid(),
    )
    return shm, manifest


def attach_shared_arrays(
    manifest: SharedArrayManifest,
) -> tuple[shared_memory.SharedMemory, "dict[str, NDArray]"]:
    """Map a manifest's block and return read-only zero-copy views.

    Parameters
    ----------
    manifest:
        A :class:`SharedArrayManifest` produced by
        :func:`export_shared_arrays` (typically received pickled from
        the exporting process).

    Returns
    -------
    (SharedMemory, dict[str, NDArray])
        The mapping handle — it must stay referenced as long as any view
        is in use (callers tie it to the owning object's lifetime) — and
        one non-writeable view per manifest entry.  No bytes are copied.

    Raises
    ------
    FileNotFoundError
        If the block no longer exists (the exporter unlinked it).
    """
    shm = shared_memory.SharedMemory(name=manifest.block, create=False)
    if manifest.creator_pid != os.getpid():
        # A foreign attacher must never let its resource tracker unlink
        # the exporter's block.  An in-process attach is left tracked:
        # the tracker's cache is a set, so the attach deduped against
        # the exporter's own registration and untracking here would
        # strip it — unbalancing the exporter's eventual unlink.
        _untrack(shm)
    views: dict[str, NDArray] = {}
    for key, off, shape, dtype_str in manifest.entries:
        view = np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=off
        )
        view.flags.writeable = False
        views[key] = view
    return shm, views


# ----------------------------------------------------------------------
# Request/response slot rings (the zero-copy serving transport)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SlotRingManifest:
    """Picklable description of one request/response slot ring.

    Attributes
    ----------
    block:
        The ``SharedMemory`` name of the ring's backing block.
    slots:
        Number of request/response slots in the ring.
    n:
        Payload vector length: each slot holds one ``(n,)`` rhs and one
        ``(n,)`` solution vector.
    dtype:
        Numpy dtype string of the payload slabs (the serving boundary
        is fp64 for both the fp64 and mixed-precision solve paths, so
        one payload dtype carries both).
    creator_pid:
        PID of the creating (parent) process; foreign attaches are
        untracked from the resource tracker exactly like
        :class:`SharedArrayManifest` attaches.
    """

    block: str
    slots: int
    n: int
    dtype: str
    creator_pid: int = -1


class SlotRing:
    """A fixed-size shared-memory request/response ring.

    The zero-copy transport primitive of the process-sharded serving
    tier (:class:`repro.serve.procshard.ProcessShardedSolveService`):
    instead of pickling every rhs into a pipe and every solution out of
    one, the client writes rhs vectors **directly into ring slots** and
    the worker writes solutions back **in place** — the pipe is demoted
    to a doorbell that carries slot ordinals and scalar knobs.

    Layout (one ``SharedMemory`` block, 64-byte-aligned sections)::

        req_seq  : int64  (slots,)   request sequence headers
        resp_seq : int64  (slots,)   response sequence headers
        rhs      : dtype  (slots, n) request payload slab
        x        : dtype  (slots, n) response payload slab

    Hand-off protocol — a slot is never read while writable:

    1. The parent :meth:`acquire`\\ s a free slot, which stamps a fresh
       **monotonic ordinal** (1-based, never reused) into
       ``req_seq[slot]``, then writes the rhs into ``rhs[slot]`` and
       sends the ``(ordinal, slot)`` doorbell.
    2. The worker checks ``req_seq[slot] == ordinal`` (a torn or stale
       doorbell is detectable), treats ``rhs[slot]`` as read-only,
       solves, writes the solution into ``x[slot]`` and only *then*
       stamps ``resp_seq[slot] = ordinal`` before ringing back.
    3. The parent verifies ``resp_seq[slot] == ordinal``, copies the
       solution out, and :meth:`release`\\ s the slot for reuse.

    Free-slot accounting lives entirely in the *creating* process
    (acquire/release are parent-side concepts); :meth:`acquire` blocks
    when every slot is in flight — that blocking **is** the transport's
    backpressure, and it guarantees an unread slot is never overwritten.
    :meth:`interrupt` wakes blocked acquirers with an error (used when
    the slot-owning worker dies or the service closes);
    :meth:`resume` re-opens the ring after a respawn re-attaches it.

    Ownership mirrors :func:`export_shared_arrays`: the creator keeps
    the handle and eventually ``close(unlink=True)``\\ s; attachers (the
    workers) are untracked and only ever ``close()`` their mapping.
    Attached ``rhs`` and ``req_seq`` views are read-only — a worker can
    never corrupt a request in flight; ``x`` and ``resp_seq`` stay
    writable (they are the worker's reply channel).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: SlotRingManifest,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.manifest = manifest
        self.owner = owner
        slots, n = manifest.slots, manifest.n
        dtype = np.dtype(manifest.dtype)
        seq = np.dtype(np.int64)
        off = 0
        self.req_seq = np.ndarray(
            (slots,), dtype=seq, buffer=shm.buf, offset=off
        )
        off = _aligned(off + self.req_seq.nbytes)
        self.resp_seq = np.ndarray(
            (slots,), dtype=seq, buffer=shm.buf, offset=off
        )
        off = _aligned(off + self.resp_seq.nbytes)
        self.rhs = np.ndarray(
            (slots, n), dtype=dtype, buffer=shm.buf, offset=off
        )
        off = _aligned(off + self.rhs.nbytes)
        self.x = np.ndarray(
            (slots, n), dtype=dtype, buffer=shm.buf, offset=off
        )
        if not owner:
            # The worker side replies through x/resp_seq only.
            self.req_seq.flags.writeable = False
            self.rhs.flags.writeable = False
        # Parent-side slot accounting (meaningless on attached rings).
        self._cond = threading.Condition()
        self._free: list[int] = list(range(slots))
        self._slot_of: dict[int, int] = {}  # live ordinal -> slot
        self._next_ordinal = 1
        self._error: BaseException | None = None
        self._closed = False

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls, slots: int, n: int, dtype=np.float64
    ) -> "SlotRing":
        """Create a fresh ring (parent side, owning the block)."""
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        dtype = np.dtype(dtype)
        seq_nbytes = slots * np.dtype(np.int64).itemsize
        slab_nbytes = slots * n * dtype.itemsize
        size = (
            _aligned(seq_nbytes) + _aligned(seq_nbytes)
            + _aligned(slab_nbytes) + slab_nbytes
        )
        shm = shared_memory.SharedMemory(create=True, size=size)
        try:
            manifest = SlotRingManifest(
                block=shm.name, slots=int(slots), n=int(n), dtype=dtype.str,
                creator_pid=os.getpid(),
            )
            ring = cls(shm, manifest, owner=True)
            ring.req_seq[:] = 0
            ring.resp_seq[:] = 0
        except BaseException:
            # The segment is kernel-side state: if ring construction
            # dies between create and handoff, release it here or it
            # leaks in /dev/shm until reboot.
            shm.close()
            shm.unlink()
            raise
        return ring

    @classmethod
    def attach(cls, manifest: SlotRingManifest) -> "SlotRing":
        """Map an existing ring (worker side, non-owning).

        Foreign attaches are untracked from the resource tracker so a
        dying worker can never unlink the parent's ring.
        """
        shm = shared_memory.SharedMemory(name=manifest.block, create=False)
        if manifest.creator_pid != os.getpid():
            _untrack(shm)
        return cls(shm, manifest, owner=False)

    # -- parent-side slot accounting -------------------------------------
    def acquire(self, timeout: float | None = None) -> tuple[int, int]:
        """Claim a free slot; blocks while the ring is full.

        Returns ``(ordinal, slot)`` with the fresh monotonic ordinal
        already stamped into ``req_seq[slot]``.  The blocking is the
        transport's backpressure: no slot is ever handed out twice, so
        an unread request can never be overwritten.

        Raises
        ------
        BaseException
            Whatever :meth:`interrupt` installed (e.g. ``WorkerCrashed``
            while the slot owner respawns, ``ServiceClosed`` on
            teardown) — re-raised as a fresh instance per waiter.
        TimeoutError
            If ``timeout`` elapses with the ring still full.
        """
        with self._cond:
            while True:
                if self._error is not None:
                    raise type(self._error)(*self._error.args)
                if self._free:
                    return self._claim_locked()
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"no free ring slot within {timeout}s "
                        f"({self.manifest.slots} slots all in flight)"
                    )

    def acquire_nowait(self) -> tuple[int, int] | None:
        """:meth:`acquire` without blocking: ``None`` when full."""
        with self._cond:
            if self._error is not None:
                raise type(self._error)(*self._error.args)
            if not self._free:
                return None
            return self._claim_locked()

    def _claim_locked(self) -> tuple[int, int]:
        slot = self._free.pop()
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        self._slot_of[ordinal] = slot
        self.req_seq[slot] = ordinal
        return ordinal, slot

    def release(self, ordinal: int) -> None:
        """Return an acquired slot to the free list (idempotent per
        ordinal) and wake one blocked acquirer."""
        with self._cond:
            slot = self._slot_of.pop(ordinal, None)
            if slot is None:
                return
            self._free.append(slot)
            self._cond.notify()

    def interrupt(self, exc: BaseException) -> None:
        """Fail current and future acquirers with ``exc`` (by type +
        args) until :meth:`resume`.  In-flight slots are untouched —
        the holder still owns their data and must release them."""
        with self._cond:
            self._error = exc
            self._cond.notify_all()

    def resume(self) -> None:
        """Clear an :meth:`interrupt` (the slot owner respawned and
        re-attached); acquires proceed again."""
        with self._cond:
            self._error = None
            self._cond.notify_all()

    @property
    def in_use(self) -> int:
        """Slots currently acquired and not yet released."""
        with self._cond:
            return len(self._slot_of)

    # -- lifecycle --------------------------------------------------------
    def close(self, unlink: bool | None = None) -> None:
        """Unmap the block; the owner unlinks it too (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if unlink is None:
            unlink = self.owner
        # Views alias shm.buf; drop them before closing the mapping or
        # SharedMemory.close() raises BufferError on exported pointers.
        self.req_seq = self.resp_seq = self.rhs = self.x = None
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass
        if unlink:
            unlink_shared_block(self._shm)
