"""Shared-memory export/attach of the SEM layer's immutable arrays.

The paper's core observation is that SEM throughput is bound by how well
the memory system is exploited, not by FLOPs — and the serving analogue
of that observation is that a fleet of worker *processes* should share
one physical copy of the large immutable state (geometric factors,
gather-scatter sort caches, nodal coordinates) rather than rebuild or
duplicate it per worker.  This module is the substrate for that sharing:

* :func:`export_shared_arrays` packs a dict of numpy arrays into one
  POSIX shared-memory block (:class:`multiprocessing.shared_memory.
  SharedMemory`) and returns a **picklable** :class:`SharedArrayManifest`
  describing where each array lives;
* :func:`attach_shared_arrays` maps the block in any process and
  returns zero-copy, read-only numpy views onto the same physical pages.

Ownership protocol
------------------
The *exporting* process owns the block: it keeps the returned
``SharedMemory`` handle and must eventually ``close()`` + ``unlink()``
it (:class:`repro.sem.spec.SharedProblemExport` and
:class:`repro.serve.procshard.ProcessShardedSolveService` do this on
``close``).  *Attaching* processes only ever ``close()`` their mapping —
:func:`attach_shared_arrays` unregisters the attachment from the
``multiprocessing`` resource tracker so a worker exiting can never tear
the block down under the exporter (the stdlib tracker would otherwise
unlink segments it saw, destroying the fleet's shared state when the
first worker dies).

Attached views are marked non-writeable: the shared state is immutable
by contract, and a stray in-place write in one worker corrupting every
other worker's geometry is exactly the class of bug the flag turns into
an immediate ``ValueError``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np
from numpy.typing import NDArray

#: Byte alignment of each packed array inside a block (cache-line sized,
#: so attached views start aligned like a fresh np.empty would).
_ALIGN: int = 64


@dataclass(frozen=True)
class SharedArrayManifest:
    """Picklable description of arrays packed into one shared block.

    Attributes
    ----------
    block:
        The ``SharedMemory`` name (the file under ``/dev/shm`` on
        Linux); every attacher maps this one block.
    nbytes:
        Total block size in bytes.
    entries:
        One ``(key, offset, shape, dtype_str)`` record per packed
        array, in packing order.
    creator_pid:
        PID of the exporting process.  Attaches from *other* processes
        are untracked from the resource tracker (they must never unlink
        the block); an attach inside the exporting process keeps the
        exporter's own tracker registration intact.
    """

    block: str
    nbytes: int
    entries: tuple[tuple[str, int, tuple[int, ...], str], ...]
    creator_pid: int = -1

    @property
    def keys(self) -> tuple[str, ...]:
        """The packed array names, in packing order."""
        return tuple(key for key, _, _, _ in self.entries)


def _aligned(offset: int) -> int:
    """Round ``offset`` up to the next :data:`_ALIGN` boundary."""
    return -(-offset // _ALIGN) * _ALIGN


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove an *attached* block from this process's resource tracker.

    The stdlib registers every ``SharedMemory`` with the
    ``multiprocessing`` resource tracker, which unlinks whatever it
    tracked when the process exits.  That is correct for the exporting
    owner and catastrophic for attachers: a worker exiting (or crashing)
    would destroy the block every other worker is still mapping.  Only
    the exporter may unlink; attachers are untracked here.
    """
    try:  # pragma: no cover - exercised indirectly; stdlib-internal name
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        # Tracker layouts differ across Python patch versions; failing
        # to untrack degrades to a spurious unlink warning at worker
        # exit, never to corruption.
        pass


def unlink_shared_block(shm: shared_memory.SharedMemory) -> None:
    """Unlink an exported block, keeping the resource tracker balanced.

    Worker attaches may have stripped the name from a *shared* tracker
    (spawned children inherit the exporter's tracker process, where
    registrations dedupe into one set — see :func:`_untrack`), in which
    case a bare ``unlink()`` would make the tracker log a spurious
    ``KeyError``.  Re-registering first is idempotent when the entry
    survived and restores it when it didn't, so the unlink's internal
    unregistration always finds its entry.  ``FileNotFoundError`` (an
    already-unlinked block) is swallowed — unlink is idempotent here.
    """
    try:  # pragma: no cover - stdlib-internal name, see _untrack
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def export_shared_arrays(
    arrays: "dict[str, NDArray]",
) -> tuple[shared_memory.SharedMemory, SharedArrayManifest]:
    """Pack ``arrays`` into one newly created shared-memory block.

    Parameters
    ----------
    arrays:
        ``{key: array}`` to export.  Each array is copied once into the
        block (C-contiguous); the originals are left untouched.

    Returns
    -------
    (SharedMemory, SharedArrayManifest)
        The owning handle (caller must eventually ``close()`` +
        ``unlink()`` it) and the picklable manifest attachers consume.

    Raises
    ------
    ValueError
        If ``arrays`` is empty (an empty export is always a caller bug).
    """
    if not arrays:
        raise ValueError("export_shared_arrays needs at least one array")
    packed: list[tuple[str, int, tuple[int, ...], str, NDArray]] = []
    offset = 0
    for key, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = _aligned(offset)
        packed.append((key, offset, arr.shape, arr.dtype.str, arr))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        for key, off, shape, dtype_str, arr in packed:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=off
            )
            view[...] = arr
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    manifest = SharedArrayManifest(
        block=shm.name,
        nbytes=shm.size,
        entries=tuple(
            (key, off, tuple(shape), dtype_str)
            for key, off, shape, dtype_str, _ in packed
        ),
        creator_pid=os.getpid(),
    )
    return shm, manifest


def attach_shared_arrays(
    manifest: SharedArrayManifest,
) -> tuple[shared_memory.SharedMemory, "dict[str, NDArray]"]:
    """Map a manifest's block and return read-only zero-copy views.

    Parameters
    ----------
    manifest:
        A :class:`SharedArrayManifest` produced by
        :func:`export_shared_arrays` (typically received pickled from
        the exporting process).

    Returns
    -------
    (SharedMemory, dict[str, NDArray])
        The mapping handle — it must stay referenced as long as any view
        is in use (callers tie it to the owning object's lifetime) — and
        one non-writeable view per manifest entry.  No bytes are copied.

    Raises
    ------
    FileNotFoundError
        If the block no longer exists (the exporter unlinked it).
    """
    shm = shared_memory.SharedMemory(name=manifest.block, create=False)
    if manifest.creator_pid != os.getpid():
        # A foreign attacher must never let its resource tracker unlink
        # the exporter's block.  An in-process attach is left tracked:
        # the tracker's cache is a set, so the attach deduped against
        # the exporter's own registration and untracking here would
        # strip it — unbalancing the exporter's eventual unlink.
        _untrack(shm)
    views: dict[str, NDArray] = {}
    for key, off, shape, dtype_str in manifest.entries:
        view = np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=off
        )
        view.flags.writeable = False
        views[key] = view
    return shm, views
