"""Poisson problem setup: assembled operator, RHS, manufactured solutions.

The paper solves the homogeneous Poisson equation in weak form (its Eq. 1)
with a preconditioned Krylov method whose core is the matrix-free ``Ax``.
:class:`PoissonProblem` wires together mesh, geometry, gather-scatter and
Dirichlet masking into the global SPD operator ``A`` that
:func:`repro.sem.cg.cg_solve` consumes, plus a spectral-accuracy
manufactured solution for verification.
"""

from __future__ import annotations

import copy
from dataclasses import InitVar, dataclass, field
from typing import Callable

import numpy as np
from numpy.typing import NDArray

from repro.sem.cg import check_precision, cg_solve, cg_solve_mixed
from repro.sem.element import ReferenceElement
from repro.sem.gather_scatter import GatherScatter
from repro.sem.geometry import Geometry, geometric_factors
from repro.sem.kernels import accepts_keyword, resolve_ax_backend
from repro.sem.mesh import BoxMesh
from repro.sem.operators import ax_local
from repro.sem.workspace import SolverWorkspace, cached_batch_workspace

AxBackend = Callable[
    [ReferenceElement, NDArray[np.float64], NDArray[np.float64]],
    NDArray[np.float64],
]


@dataclass
class PoissonProblem:
    """Homogeneous-Dirichlet Poisson problem on a box mesh.

    Parameters
    ----------
    mesh:
        The SEM mesh.
    ax_backend:
        Local operator implementation — either a registry name
        (``"einsum"``, ``"matmul"``, ``"listing1"``, ``"dense"``; see
        :mod:`repro.sem.kernels`) or a callable.  Defaults to the
        vectorized :func:`~repro.sem.operators.ax_local`.  The FPGA
        accelerator simulator plugs in here (see
        :meth:`repro.core.accel.SEMAccelerator.as_ax_backend`).
    threads:
        Element-block worker threads for blocked kernels (see
        :func:`~repro.sem.kernels.ax_local_matmul`); carried by the
        problem's workspaces, so every solve through them inherits it.
    precision:
        Default solve precision policy: ``"fp64"`` (the historical
        bit-exact double path) or ``"mixed"`` (fp32 inner Jacobi-CG +
        fp64 iterative refinement; see
        :func:`~repro.sem.cg.cg_solve_mixed`).  Selects the path
        :meth:`solve` takes and the default the serving layer inherits;
        either precision can still be requested per solve.

    The problem owns a :class:`~repro.sem.workspace.SolverWorkspace`
    sized for its mesh; :meth:`apply_A` runs through it (and through the
    backend's ``out=``/``workspace=`` keywords when supported) so the CG
    hot path performs no field-sized allocations after warm-up.  The
    shared buffers make one problem instance serve one solve at a time —
    though that one solve may carry a stacked ``(B, n)`` block of
    right-hand sides through :meth:`batch_workspace` and
    :func:`~repro.sem.cg.cg_solve_batched`.
    """

    mesh: BoxMesh
    ax_backend: AxBackend | str = ax_local
    threads: int = 1
    precision: str = "fp64"
    # The spec/rebuild hand-off (see repro.sem.spec.ProblemParts):
    # prebuilt immutable state — typically shared-memory views attached
    # by a worker process — adopted instead of recomputed.
    _parts: InitVar["object | None"] = None
    geometry: Geometry = field(init=False)
    gs: GatherScatter = field(init=False)
    interior: NDArray[np.bool_] = field(init=False, repr=False)
    workspace: SolverWorkspace = field(init=False, repr=False)

    def __post_init__(self, _parts: "object | None" = None) -> None:
        check_precision(self.precision)
        if _parts is not None:
            self.geometry = _parts.geometry
            self.gs = _parts.gather_scatter
        else:
            self.geometry = geometric_factors(self.mesh)
            self.gs = GatherScatter.from_mesh(self.mesh)
        self.interior = ~self.mesh.boundary_mask()
        self.ax_backend = resolve_ax_backend(self.ax_backend)
        self.workspace = SolverWorkspace.for_mesh(
            self.mesh, threads=self.threads
        )
        self._batch_workspaces: dict[object, SolverWorkspace] = {}
        self._interior_f = self.interior.astype(np.float64)
        self._interior32: NDArray[np.float32] | None = None
        self._ax_out = accepts_keyword(self.ax_backend, "out")
        self._ax_ws = accepts_keyword(self.ax_backend, "workspace")
        self._precond_diag: NDArray[np.float64] | None = (
            None if _parts is None else _parts.precond_diag
        )

    # ------------------------------------------------------------------
    @property
    def ref(self) -> ReferenceElement:
        """The mesh's reference element."""
        return self.mesh.ref

    @property
    def n_dofs(self) -> int:
        """Number of global DOFs (including masked boundary nodes)."""
        return self.mesh.n_global

    @property
    def operator(self) -> Callable[..., NDArray[np.float64]]:
        """The global SPD operator callback (:meth:`apply_A`).

        The uniform solver-facing protocol shared with
        :class:`~repro.sem.helmholtz.HelmholtzProblem` (whose operator
        method is named ``apply``); the serving layer
        (:mod:`repro.serve`) binds problems through this property.
        """
        return self.apply_A

    @property
    def operator32(self) -> Callable[..., NDArray[np.float32]]:
        """The fp32 twin operator callback (:meth:`apply_A32`).

        Same protocol as :attr:`operator`; the mixed-precision solvers
        (:func:`~repro.sem.cg.cg_solve_mixed`) drive their fp32 inner
        iterations through this.
        """
        return self.apply_A32

    def precond_diag(self) -> NDArray[np.float64]:
        """The Jacobi diagonal, computed once and cached.

        Repeated solves (and every batch a :class:`repro.serve.SolveService`
        dispatches) reuse one assembled diagonal instead of regathering
        it; treat the returned array as read-only.
        """
        if self._precond_diag is None:
            self._precond_diag = self.jacobi_diagonal()
        return self._precond_diag

    def clone(self) -> "PoissonProblem":
        """A solve replica sharing this problem's immutable state.

        Sharding (:class:`repro.serve.shard.ShardedSolveService`) needs
        ``K`` problem instances that can each carry one solve at a time
        *concurrently* — but rebuilding geometry and the gather-scatter
        sort per replica would multiply setup cost and memory for data
        that never changes.  The clone therefore shares everything
        immutable — mesh, :class:`~repro.sem.geometry.Geometry`, the
        Dirichlet mask, the resolved backend, and the (force-computed)
        Jacobi diagonal — while owning the mutable per-solve state: a
        fresh :class:`~repro.sem.workspace.SolverWorkspace`, an empty
        batched-workspace cache, and a
        :meth:`~repro.sem.gather_scatter.GatherScatter.replicate` twin
        with private permutation scratch.

        Returns
        -------
        PoissonProblem
            A replica that is safe to solve through concurrently with
            ``self`` (no mutable buffers are shared).
        """
        # Share-by-default via a shallow copy, then replace exactly the
        # mutable per-solve state: fields added later are shared
        # automatically instead of silently dropped.
        twin = copy.copy(self)
        # Force the diagonal once on the source so every replica shares
        # a single assembled (read-only) array.
        twin._precond_diag = self.precond_diag()
        twin.gs = self.gs.replicate()
        twin.workspace = SolverWorkspace.for_mesh(
            self.mesh, threads=self.threads
        )
        twin._batch_workspaces = {}
        return twin

    def spec(self):
        """A picklable :class:`~repro.sem.spec.ProblemSpec` of this problem.

        :func:`~repro.sem.spec.rebuild` re-runs the deterministic
        construction from it in any process (bit-identical solves).
        Deformed meshes and unregistered backend callables are rejected
        — use :meth:`export_shared` for the former.
        """
        from repro.sem.spec import problem_spec

        return problem_spec(self)

    def export_shared(self):
        """Export the immutable arrays to shared memory for worker fleets.

        Returns a :class:`~repro.sem.spec.SharedProblemExport` whose
        ``spec`` rebuilds this problem in any process with the geometry,
        gather-scatter caches, coordinates, quadrature arrays and
        Jacobi diagonal attached zero-copy — one physical copy across
        every worker.  The caller owns the export: ``close()`` it when
        the fleet is done.
        """
        from repro.sem.spec import export_shared_problem

        return export_shared_problem(self)

    # ------------------------------------------------------------------
    def batch_workspace(
        self, batch: int, dtype: "np.dtype | type" = np.float64
    ) -> SolverWorkspace:
        """The problem's workspace for ``batch`` stacked right-hand sides.

        Sized once per distinct ``(batch, dtype)`` and cached, so
        repeated batched solves stay warm; ``batch=1`` in fp64 returns
        the problem's own :attr:`workspace`.  ``dtype=np.float32``
        yields the half-footprint twin the mixed-precision inner solves
        run through.  Shares the problem's ``threads`` setting.
        """
        return cached_batch_workspace(
            self._batch_workspaces, self.mesh, batch, self.threads,
            self.workspace, dtype=dtype,
        )

    def apply_A(
        self,
        u_global: NDArray[np.float64],
        out: NDArray[np.float64] | None = None,
    ) -> NDArray[np.float64]:
        """Global operator: mask -> scatter -> local Ax -> gather -> mask.

        The returned operator is symmetric positive definite on the
        interior DOFs (boundary rows/columns are identities times zero,
        i.e. masked out), which CG requires.  Every intermediate lives in
        the problem's workspace; passing ``out`` (as
        :func:`~repro.sem.cg.cg_solve` does) makes the whole application
        allocation-free.

        A stacked ``(B, n)`` input applies the operator to all ``B``
        systems at once through the cached batched workspace — the path
        :func:`~repro.sem.cg.cg_solve_batched` drives.  A batch of one
        runs the single-system path on its only row.
        """
        if u_global.ndim == 2 and u_global.shape[0] == 1:
            if out is not None:
                self.apply_A(u_global[0], out=out[0])
                return out
            return self.apply_A(u_global[0])[None]
        ws = (
            self.batch_workspace(u_global.shape[0])
            if u_global.ndim == 2 else self.workspace
        )
        np.multiply(u_global, self._interior_f, out=ws.g_tmp)
        self.gs.scatter(ws.g_tmp, out=ws.u_local)
        if self._ax_out and self._ax_ws:
            w_local = self.ax_backend(
                self.ref, ws.u_local, self.geometry.g,
                out=ws.w_local, workspace=ws,
            )
        elif u_global.ndim == 2:
            # Plain (ref, u, g) backends (e.g. the accelerator adapter)
            # see one system at a time.
            w_local = ws.w_local
            for b in range(u_global.shape[0]):
                np.copyto(
                    w_local[b],
                    self.ax_backend(self.ref, ws.u_local[b], self.geometry.g),
                )
        else:
            w_local = self.ax_backend(self.ref, ws.u_local, self.geometry.g)
        w = self.gs.gather(w_local, out=out)
        np.multiply(w, self._interior_f, out=w)
        return w

    def apply_A32(
        self,
        u_global: NDArray[np.float32],
        out: NDArray[np.float32] | None = None,
    ) -> NDArray[np.float32]:
        """fp32 twin of :meth:`apply_A` over the same physical operator.

        Streams the lazily cached fp32 geometry
        (:meth:`~repro.sem.geometry.Geometry.as_dtype`) and
        gather-scatter twins through the dtype-generic kernels — half
        the bytes per DOF of the fp64 path, which is where the mixed
        solve's speedup comes from on this bandwidth-bound operator.
        Inputs and outputs are fp32; the first call per batch size pays
        the one-time twin casts, after which the path is allocation-free
        like :meth:`apply_A`.
        """
        if u_global.ndim == 2 and u_global.shape[0] == 1:
            if out is not None:
                self.apply_A32(u_global[0], out=out[0])
                return out
            return self.apply_A32(u_global[0])[None]
        ws = self.batch_workspace(
            u_global.shape[0] if u_global.ndim == 2 else 1,
            dtype=np.float32,
        )
        gs = self.gs.as_dtype(np.float32)
        geo = self.geometry.as_dtype(np.float32)
        if self._interior32 is None:
            self._interior32 = self.interior.astype(np.float32)
        np.multiply(u_global, self._interior32, out=ws.g_tmp)
        gs.scatter(ws.g_tmp, out=ws.u_local)
        if self._ax_out and self._ax_ws:
            w_local = self.ax_backend(
                self.ref, ws.u_local, geo.g, out=ws.w_local, workspace=ws,
            )
        elif u_global.ndim == 2:
            w_local = ws.w_local
            for b in range(u_global.shape[0]):
                np.copyto(
                    w_local[b],
                    self.ax_backend(self.ref, ws.u_local[b], geo.g),
                )
        else:
            w_local = self.ax_backend(self.ref, ws.u_local, geo.g)
        w = gs.gather(w_local, out=out)
        np.multiply(w, self._interior32, out=w)
        return w

    def solve(
        self,
        b: NDArray[np.float64],
        tol: float = 1e-10,
        maxiter: int = 1000,
        x0: NDArray[np.float64] | None = None,
        precision: str | None = None,
    ):
        """Solve ``A x = b`` through the problem's cached workspaces.

        Dispatches on ``precision`` (default: the problem's own
        :attr:`precision` field): ``"fp64"`` runs the historical
        :func:`~repro.sem.cg.cg_solve`, ``"mixed"`` the fp32-inner /
        fp64-refinement :func:`~repro.sem.cg.cg_solve_mixed` — both to
        the same fp64 ``tol``, judged on the true residual for the
        mixed path.  A stacked ``(B, n)`` right-hand side solves the
        whole block at once either way.
        """
        precision = check_precision(
            self.precision if precision is None else precision
        )
        b = np.asarray(b, dtype=np.float64)
        batch = b.shape[0] if b.ndim == 2 else 1
        ws = self.batch_workspace(batch)
        diag = self.precond_diag()
        if precision == "fp64":
            return cg_solve(
                self.apply_A, b, x0=x0, precond_diag=diag, tol=tol,
                maxiter=maxiter, workspace=ws,
            )
        ws32 = self.batch_workspace(batch, dtype=np.float32)
        return cg_solve_mixed(
            self.apply_A, self.apply_A32, b, x0=x0, precond_diag=diag,
            tol=tol, maxiter=maxiter, workspace=ws, workspace32=ws32,
        )

    def jacobi_diagonal(self) -> NDArray[np.float64]:
        """Assembled diagonal of ``A`` for the Jacobi preconditioner.

        Computed matrix-free from the geometric factors:
        ``diag(A^e)[ijk] = sum_l D[l,i]^2 G_rr(l,j,k) + D[l,j]^2 G_ss(i,l,k)
        + D[l,k]^2 G_tt(i,j,l)`` plus cross terms that involve only the
        node itself (``2 D[i,i] D[j,j] G_rs`` etc.), then gathered.
        """
        d2 = self.ref.deriv ** 2
        g = self.geometry.g
        diag = np.einsum("li,eljk->eijk", d2, g[:, 0], optimize=True)
        diag += np.einsum("lj,eilk->eijk", d2, g[:, 3], optimize=True)
        diag += np.einsum("lk,eijl->eijk", d2, g[:, 5], optimize=True)
        dd = np.diag(self.ref.deriv)
        diag += 2.0 * g[:, 1] * dd[:, None, None] * dd[None, :, None]
        diag += 2.0 * g[:, 2] * dd[:, None, None] * dd[None, None, :]
        diag += 2.0 * g[:, 4] * dd[None, :, None] * dd[None, None, :]
        out = self.gs.gather(diag)
        out[~self.interior] = 1.0
        return out

    # ------------------------------------------------------------------
    def rhs_from_forcing(
        self, f: Callable[[NDArray, NDArray, NDArray], NDArray]
    ) -> NDArray[np.float64]:
        """Weak-form right-hand side ``b = Q^T B f`` with boundary masked.

        Parameters
        ----------
        f:
            Forcing as a function of nodal coordinate arrays.
        """
        x, y, z = self.mesh.coords
        f_local = f(x, y, z) * self.geometry.mass
        b = self.gs.gather(f_local)
        b[~self.interior] = 0.0
        return b

    def nodal_values(
        self, u: Callable[[NDArray, NDArray, NDArray], NDArray]
    ) -> NDArray[np.float64]:
        """Evaluate an analytic field at the global nodes."""
        x, y, z = self.mesh.coords
        u_local = u(x, y, z)
        # Average the redundant interface copies (they are identical for a
        # continuous analytic field, so a plain gather/multiplicity works).
        return self.gs.gather(u_local) / self.gs.multiplicity()

    def l2_error(
        self,
        u_global: NDArray[np.float64],
        exact: Callable[[NDArray, NDArray, NDArray], NDArray],
    ) -> float:
        """Discrete L2 error ``sqrt(sum B (u - u_exact)^2)`` over the mesh."""
        x, y, z = self.mesh.coords
        diff = self.gs.scatter(u_global) - exact(x, y, z)
        return float(np.sqrt(np.sum(self.geometry.mass * diff ** 2)))


def sine_manufactured(
    extent: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> tuple[
    Callable[[NDArray, NDArray, NDArray], NDArray],
    Callable[[NDArray, NDArray, NDArray], NDArray],
]:
    """Return ``(u_exact, forcing)`` for ``-lap(u) = f`` with
    ``u = sin(pi x/Lx) sin(pi y/Ly) sin(pi z/Lz)`` (zero on the boundary).

    ``f = pi^2 (Lx^-2 + Ly^-2 + Lz^-2) u``, so a single pair serves any box.
    """
    lx, ly, lz = extent
    coef = np.pi ** 2 * (1.0 / lx ** 2 + 1.0 / ly ** 2 + 1.0 / lz ** 2)

    def u_exact(x: NDArray, y: NDArray, z: NDArray) -> NDArray:
        return (
            np.sin(np.pi * x / lx)
            * np.sin(np.pi * y / ly)
            * np.sin(np.pi * z / lz)
        )

    def forcing(x: NDArray, y: NDArray, z: NDArray) -> NDArray:
        return coef * u_exact(x, y, z)

    return u_exact, forcing
