"""Spectral differentiation matrices on GLL nodes.

``D[i, j] = l_j'(x_i)`` — applying ``D`` to nodal values differentiates the
degree-``N`` interpolant exactly.  This is the paper's ``D`` (``dx`` in
Listing 1; ``dxt`` is its transpose).

Two constructions are provided: the closed-form GLL formula (used by the
library) and a barycentric construction valid for arbitrary distinct nodes
(used for cross-validation in the tests and for padded node sets).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.sem.basis import barycentric_weights
from repro.sem.legendre import legendre
from repro.sem.quadrature import gll_points_and_weights


@lru_cache(maxsize=64)
def _derivative_matrix_cached(n_points: int) -> bytes:
    n = n_points - 1
    x, _ = gll_points_and_weights(n_points)
    ln = legendre(n, x)
    d = np.zeros((n_points, n_points))
    for i in range(n_points):
        for j in range(n_points):
            if i != j:
                d[i, j] = ln[i] / (ln[j] * (x[i] - x[j]))
    d[0, 0] = -n * (n + 1) / 4.0
    d[-1, -1] = n * (n + 1) / 4.0
    # Negative-sum trick: set the remaining diagonal so rows sum to zero
    # exactly (derivative of the constant function vanishes identically).
    for i in range(1, n_points - 1):
        d[i, i] = -np.sum(d[i, :i]) - np.sum(d[i, i + 1:])
    return d.tobytes()


def derivative_matrix(n_points: int) -> NDArray[np.float64]:
    """GLL spectral differentiation matrix of size ``n_points x n_points``.

    Parameters
    ----------
    n_points:
        ``N + 1`` GLL nodes (must be >= 2).

    Returns
    -------
    ``D`` with ``(D f)(x_i) = f'(x_i)`` exact for ``f`` of degree <= N.
    """
    if n_points < 2:
        raise ValueError(f"need at least 2 points, got {n_points}")
    buf = _derivative_matrix_cached(n_points)
    return np.frombuffer(buf, dtype=np.float64).reshape(n_points, n_points).copy()


def derivative_matrix_general(nodes: ArrayLike) -> NDArray[np.float64]:
    """Differentiation matrix for arbitrary distinct nodes (barycentric).

    ``D[i, j] = (w_j / w_i) / (x_i - x_j)`` off-diagonal, diagonal via the
    negative-sum trick.  Agrees with :func:`derivative_matrix` on GLL nodes
    to machine precision; also serves padded/odd node sets.
    """
    x = np.asarray(nodes, dtype=np.float64)
    w = barycentric_weights(x)
    n = x.size
    diff = x[:, None] - x[None, :]
    np.fill_diagonal(diff, 1.0)
    d = (w[None, :] / w[:, None]) / diff
    np.fill_diagonal(d, 0.0)
    np.fill_diagonal(d, -d.sum(axis=1))
    return d
