"""Legendre polynomials and derivatives via the three-term recurrence.

These are the building blocks of the SEM basis: the paper's basis functions
are Lagrange interpolants on the Gauss-Lobatto-Legendre (GLL) points, which
are the extrema of the degree-``N`` Legendre polynomial ``L_N`` plus the
interval endpoints.

All evaluators are vectorized over the sample points.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray


def legendre(n: int, x: ArrayLike) -> NDArray[np.float64]:
    """Evaluate the Legendre polynomial ``L_n`` at ``x``.

    Uses the Bonnet recurrence
    ``(k+1) L_{k+1}(x) = (2k+1) x L_k(x) - k L_{k-1}(x)``,
    which is numerically stable on ``[-1, 1]``.

    Parameters
    ----------
    n:
        Polynomial degree, ``n >= 0``.
    x:
        Evaluation points (any shape).

    Returns
    -------
    ``L_n(x)`` with the same shape as ``x``.
    """
    if n < 0:
        raise ValueError(f"degree must be non-negative, got {n}")
    xv = np.asarray(x, dtype=np.float64)
    p_prev = np.ones_like(xv)
    if n == 0:
        return p_prev
    p = xv.copy()
    for k in range(1, n):
        p, p_prev = ((2 * k + 1) * xv * p - k * p_prev) / (k + 1), p
    return p


def legendre_prime(n: int, x: ArrayLike) -> NDArray[np.float64]:
    """Evaluate the derivative ``L_n'`` at ``x``.

    Uses ``(1-x^2) L_n'(x) = n (L_{n-1}(x) - x L_n(x))`` away from the
    endpoints and the exact endpoint values
    ``L_n'(±1) = (±1)^{n-1} n(n+1)/2``.
    """
    if n < 0:
        raise ValueError(f"degree must be non-negative, got {n}")
    xv = np.asarray(x, dtype=np.float64)
    if n == 0:
        return np.zeros_like(xv)
    ln = legendre(n, xv)
    lnm1 = legendre(n - 1, xv)
    denom = 1.0 - xv * xv
    out = np.empty_like(xv)
    interior = np.abs(denom) > 1e-14
    out[interior] = n * (lnm1[interior] - xv[interior] * ln[interior]) / denom[interior]
    # Endpoint limits.
    at_p1 = ~interior & (xv > 0)
    at_m1 = ~interior & (xv <= 0)
    out[at_p1] = n * (n + 1) / 2.0
    out[at_m1] = ((-1.0) ** (n - 1)) * n * (n + 1) / 2.0
    return out


def legendre_and_prime(n: int, x: ArrayLike) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Return ``(L_n(x), L_n'(x))`` in one call (shared recurrence work)."""
    return legendre(n, x), legendre_prime(n, x)


def q_and_evaluations(n: int, x: ArrayLike) -> tuple[
    NDArray[np.float64], NDArray[np.float64], NDArray[np.float64]
]:
    """Evaluate ``q(x) = (1 - x^2) L_n'(x)`` and its derivative, plus ``L_n``.

    The interior GLL points of degree ``n`` are the roots of ``q``; Newton's
    method on ``q`` is the standard way to compute them.  Using
    ``q'(x) = -n (n+1) L_n(x)`` (a Legendre ODE identity) keeps the Newton
    update free of cancellation at the cluster near the endpoints.

    Returns
    -------
    ``(q, q_prime, L_n)`` evaluated at ``x``.
    """
    xv = np.asarray(x, dtype=np.float64)
    ln = legendre(n, xv)
    lp = legendre_prime(n, xv)
    q = (1.0 - xv * xv) * lp
    qp = -n * (n + 1) * ln
    return q, qp, ln
