"""Picklable problem specs: rebuild a solve-identical problem anywhere.

A problem object (:class:`~repro.sem.poisson.PoissonProblem`,
:class:`~repro.sem.helmholtz.HelmholtzProblem`,
:class:`~repro.sem.nekbone.NekboneCase`) is deliberately *not*
picklable-by-value — it owns thread pools, scratch buffers and resolved
callables.  Process-level sharding
(:class:`repro.serve.procshard.ProcessShardedSolveService`) instead
ships a :class:`ProblemSpec`: a tiny frozen description (kind, degree,
element box, backend *name*, threads) plus optional shared-memory
manifests for the large immutable arrays.  :func:`rebuild` turns the
spec back into a warm problem in any process; with manifests attached,
the rebuilt problem's geometry, gather-scatter caches, nodal
coordinates, quadrature arrays and Jacobi diagonal are zero-copy views
onto the exporter's physical pages — ``K`` workers, one copy of
``g_soa``.

Bit-identity is the contract, twice over: a problem rebuilt from a
plain spec re-runs the identical deterministic construction, and a
problem rebuilt from a *shared* export doesn't even recompute — it
reads the exporter's own arrays, so there is nothing left to differ.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from numpy.typing import NDArray

from repro.sem.element import ReferenceElement
from repro.sem.gather_scatter import GatherScatter, SharedGatherScatter
from repro.sem.geometry import Geometry
from repro.sem.helmholtz import HelmholtzProblem
from repro.sem.kernels import ax_kernel_name
from repro.sem.mesh import BoxMesh
from repro.sem.nekbone import NekboneCase
from repro.sem.poisson import PoissonProblem
from repro.sem.shared import (
    SharedArrayManifest,
    SlotRingManifest,
    attach_shared_arrays,
    export_shared_arrays,
)

#: Problem kinds a spec can describe (the serving protocol's problems).
PROBLEM_KINDS: tuple[str, ...] = ("poisson", "helmholtz", "nekbone")


@dataclass(frozen=True)
class ProblemSpec:
    """Frozen, picklable description of one SEM problem.

    Attributes
    ----------
    kind:
        One of :data:`PROBLEM_KINDS`.
    degree / shape / extent:
        The discretization: polynomial degree and the element box.
    ax_backend:
        Kernel *registry name* (``"einsum"``, ``"matmul"``, ...) — never
        a callable, so the spec pickles by value and the rebuilding
        process resolves the identical registered kernel.
    threads:
        Element-block worker threads of the rebuilt workspaces.
    lam:
        Helmholtz coefficient (``None`` for the other kinds).
    precision:
        Default solve precision policy of the rebuilt problem
        (``"fp64"`` or ``"mixed"``); per-request precision still works
        either way.
    geometry / gather_scatter / extras:
        Optional shared-memory handles (set by
        :func:`export_shared_problem`): the
        :class:`~repro.sem.shared.SharedArrayManifest` of the geometric
        factors, the :class:`~repro.sem.gather_scatter.
        SharedGatherScatter` of the sort caches, and a manifest with the
        nodal coordinates, reference-element quadrature arrays
        (``points``/``weights``/``deriv``) and the assembled Jacobi
        diagonal.  ``None`` means :func:`rebuild` recomputes instead of
        attaching.
    geometry32:
        Optional manifest of the fp32 geometry twin
        (:meth:`~repro.sem.geometry.Geometry.as_dtype`), exported
        alongside the fp64 factors so every worker's mixed-precision
        inner solves stream one parent-owned fp32 copy instead of each
        paying a private field-sized cast.
    ring:
        Optional :class:`~repro.sem.shared.SlotRingManifest` of the
        request/response slot ring assigned to the worker rebuilding
        from this spec (the zero-copy serving transport; see
        :class:`~repro.sem.shared.SlotRing`).  Unlike the manifests
        above, which every worker shares, a ring is **per worker** —
        the parent stamps each worker's spec with its own ring via
        :meth:`SharedProblemExport.spec_with_ring`.  :func:`rebuild`
        ignores it; the serving layer attaches it beside the problem.
    """

    kind: str
    degree: int
    shape: tuple[int, int, int]
    extent: tuple[float, float, float]
    ax_backend: str
    threads: int = 1
    lam: float | None = None
    precision: str = "fp64"
    geometry: SharedArrayManifest | None = None
    gather_scatter: SharedGatherScatter | None = None
    extras: SharedArrayManifest | None = None
    geometry32: SharedArrayManifest | None = None
    ring: SlotRingManifest | None = None

    @property
    def shared_blocks(self) -> tuple[str, ...]:
        """Names of the shared-memory blocks this spec attaches to."""
        names = []
        if self.geometry is not None:
            names.append(self.geometry.block)
        if self.gather_scatter is not None:
            names.append(self.gather_scatter.arrays.block)
        if self.extras is not None:
            names.append(self.extras.block)
        if self.geometry32 is not None:
            names.append(self.geometry32.block)
        if self.ring is not None:
            names.append(self.ring.block)
        return tuple(names)


@dataclass(frozen=True)
class ProblemParts:
    """Prebuilt immutable state handed to a problem's constructor.

    The ``_parts`` hand-off of :func:`rebuild` (mirroring
    ``ShardedSolveService``'s ``_problems``): when present, the problem
    adopts these instead of recomputing, so attached shared-memory state
    flows into the ordinary constructors without a second code path.
    """

    geometry: Geometry
    gather_scatter: GatherScatter
    precond_diag: NDArray | None = None


@dataclass
class SharedProblemExport:
    """One problem exported for process-level sharing.

    The exporting process keeps this object: :attr:`spec` is the
    picklable hand-off for workers (:func:`rebuild` attaches its
    manifests), :attr:`blocks` are the owning ``SharedMemory`` handles.
    Call :meth:`close` exactly once when the fleet is done — it unmaps
    *and unlinks* the blocks, which is the exporter's job alone
    (attachers are untracked; see :mod:`repro.sem.shared`).
    """

    spec: ProblemSpec
    blocks: tuple

    @property
    def block_names(self) -> tuple[str, ...]:
        """The shared blocks' names (``/dev/shm`` entries on Linux)."""
        return tuple(shm.name for shm in self.blocks)

    def spec_with_ring(self, ring: SlotRingManifest | None) -> ProblemSpec:
        """This export's spec stamped with one worker's ring descriptor.

        The per-worker hand-off of the zero-copy transport: the shared
        problem manifests are common to the fleet, the ring is the one
        per-worker block — a respawned worker gets the *same* ring
        manifest back, re-attaching the slots its predecessor left.
        """
        if ring is None:
            return self.spec
        return replace(self.spec, ring=ring)

    def close(self, unlink: bool = True) -> None:
        """Unmap (and by default unlink) every exported block.  Idempotent."""
        from repro.sem.shared import unlink_shared_block

        for shm in self.blocks:
            try:
                shm.close()
            except (OSError, BufferError):  # pragma: no cover - teardown race
                pass
            if unlink:
                unlink_shared_block(shm)
        self.blocks = ()


def _classify(problem) -> tuple[str, object]:
    """``(kind, inner_problem)`` of a protocol problem, or raise."""
    if isinstance(problem, NekboneCase):
        return "nekbone", problem.problem
    if isinstance(problem, PoissonProblem):
        return "poisson", problem
    if isinstance(problem, HelmholtzProblem):
        return "helmholtz", problem
    raise TypeError(
        f"problem {type(problem).__name__} has no spec; expected a "
        "PoissonProblem, HelmholtzProblem or NekboneCase"
    )


def _base_spec(problem) -> ProblemSpec:
    """The shared-manifest-free spec fields of ``problem``."""
    kind, inner = _classify(problem)
    name = ax_kernel_name(inner.ax_backend)
    if name is None:
        raise ValueError(
            "problem's ax backend is not a registered kernel; a picklable "
            "spec needs a registry name (register the callable with "
            "repro.sem.kernels.register_ax_kernel first)"
        )
    mesh = inner.mesh
    return ProblemSpec(
        kind=kind,
        degree=mesh.ref.degree,
        shape=tuple(mesh.shape),
        extent=tuple(mesh.extent),
        ax_backend=name,
        threads=int(inner.threads),
        lam=float(problem.lam) if kind == "helmholtz" else None,
        precision=inner.precision,
    )


def problem_spec(problem) -> ProblemSpec:
    """A plain (no shared memory) picklable spec of ``problem``.

    :func:`rebuild` re-runs the deterministic construction from this
    spec, so the mesh must be reproducible from ``(degree, shape,
    extent)`` — a deformed mesh is rejected here (its coordinates only
    travel through :func:`export_shared_problem`, which ships them in
    shared memory).

    Raises
    ------
    TypeError
        For non-protocol problems.
    ValueError
        For an unregistered backend callable or a deformed mesh.
    """
    spec = _base_spec(problem)
    _, inner = _classify(problem)
    pristine = BoxMesh.build(inner.mesh.ref, spec.shape, spec.extent)
    if not np.array_equal(pristine.coords, inner.mesh.coords):
        raise ValueError(
            "mesh coordinates are not reproducible from (degree, shape, "
            "extent) — the mesh was deformed; use export_shared(), which "
            "ships the coordinates in shared memory"
        )
    return spec


def export_shared_problem(problem) -> SharedProblemExport:
    """Export ``problem``'s immutable arrays and return spec + blocks.

    Four blocks are created: the geometric factors
    (:meth:`~repro.sem.geometry.Geometry.export_shared`), the
    gather-scatter caches (:meth:`~repro.sem.gather_scatter.
    GatherScatter.export_shared`), an extras block with the nodal
    coordinates, the reference element's quadrature arrays and the
    (force-computed) Jacobi diagonal, and the fp32 geometry twin for
    the mixed-precision inner solves (exported unconditionally — it is
    half the fp64 factors' size, and shipping it lets any worker honor
    a per-request ``precision="mixed"`` zero-copy even when the
    problem's default policy is fp64).  Every worker that
    :func:`rebuild`-s the returned spec attaches these same blocks —
    one physical copy of the big arrays across the whole fleet,
    deformed meshes included (the coordinates ride along).

    Returns
    -------
    SharedProblemExport
        Keep it for the fleet's lifetime; ``close()`` unlinks the blocks.
    """
    spec = _base_spec(problem)
    _, inner = _classify(problem)
    blocks: list = []
    try:
        geo_shm, geo_manifest = inner.geometry.export_shared()
        blocks.append(geo_shm)
        gs_shm, gs_handle = inner.gs.export_shared()
        blocks.append(gs_shm)
        ref = inner.mesh.ref
        extras_shm, extras_manifest = export_shared_arrays({
            "coords": inner.mesh.coords,
            "ref_points": ref.points,
            "ref_weights": ref.weights,
            "ref_deriv": ref.deriv,
            "precond_diag": problem.precond_diag(),
        })
        blocks.append(extras_shm)
        geo32_shm, geo32_manifest = (
            inner.geometry.as_dtype(np.float32).export_shared()
        )
        blocks.append(geo32_shm)
    except BaseException:
        for shm in blocks:
            shm.close()
            shm.unlink()
        raise
    spec = replace(
        spec,
        geometry=geo_manifest,
        gather_scatter=gs_handle,
        extras=extras_manifest,
        geometry32=geo32_manifest,
    )
    return SharedProblemExport(spec=spec, blocks=tuple(blocks))


def rebuild(spec: ProblemSpec):
    """Reconstruct a warm, solve-identical problem from a spec.

    With shared manifests the big arrays are attached zero-copy
    (read-only views whose mappings live as long as the objects holding
    them); without, the deterministic construction is re-run.  Either
    way the rebuilt problem's solves are bit-identical to the source
    problem's — the process-shard's serving contract rests on this.

    Parameters
    ----------
    spec:
        A :class:`ProblemSpec` (typically received pickled from the
        exporting process).

    Returns
    -------
    PoissonProblem | HelmholtzProblem | NekboneCase
        Per ``spec.kind``, ready to solve through.

    Raises
    ------
    ValueError
        For an unknown kind or a spec with only one of the
        geometry/gather-scatter manifests.
    """
    if spec.kind not in PROBLEM_KINDS:
        raise ValueError(
            f"unknown problem kind {spec.kind!r}; expected one of "
            f"{PROBLEM_KINDS}"
        )
    if (spec.geometry is None) != (spec.gather_scatter is None):
        raise ValueError(
            "spec must carry both the geometry and gather-scatter "
            "manifests (or neither)"
        )
    if spec.geometry32 is not None and spec.geometry is None:
        raise ValueError(
            "spec carries an fp32 geometry manifest without the fp64 "
            "geometry it twins"
        )
    extras_shm = extras = None
    if spec.extras is not None:
        extras_shm, extras = attach_shared_arrays(spec.extras)
    if extras is not None and "ref_points" in extras:
        ref = ReferenceElement(
            degree=spec.degree,
            points=extras["ref_points"],
            weights=extras["ref_weights"],
            deriv=extras["ref_deriv"],
        )
    else:
        ref = ReferenceElement.from_degree(spec.degree)
    mesh = BoxMesh.build(ref, spec.shape, spec.extent)
    if extras is not None and "coords" in extras:
        mesh = replace(mesh, coords=extras["coords"])
    if extras_shm is not None:
        # Tie the extras mapping to the object holding its views.
        object.__setattr__(mesh, "_shm", extras_shm)

    parts = None
    if spec.geometry is not None:
        geometry = Geometry.attach_shared(spec.geometry)
        if spec.geometry32 is not None:
            # Install the parent's shared fp32 twin, so as_dtype()
            # resolves to the exported pages instead of a private cast.
            geometry.adopt_twin(Geometry.attach_shared(spec.geometry32))
        parts = ProblemParts(
            geometry=geometry,
            gather_scatter=GatherScatter.attach_shared(spec.gather_scatter),
            precond_diag=(
                extras["precond_diag"]
                if extras is not None and "precond_diag" in extras
                else None
            ),
        )

    if spec.kind == "helmholtz":
        return HelmholtzProblem(
            mesh, lam=spec.lam, ax_backend=spec.ax_backend,
            threads=spec.threads, precision=spec.precision, _parts=parts,
        )
    poisson = PoissonProblem(
        mesh, ax_backend=spec.ax_backend, threads=spec.threads,
        precision=spec.precision, _parts=parts,
    )
    if spec.kind == "poisson":
        return poisson
    return NekboneCase(
        n=spec.degree, shape=spec.shape, ax_backend=spec.ax_backend,
        threads=spec.threads, precision=spec.precision, _problem=poisson,
    )
