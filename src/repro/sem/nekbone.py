"""A Nekbone-style proxy driver: the paper's reference workload.

Nekbone [34] is "the Thermal Hydraulics mini-application" — the proxy for
Nek5000 the paper takes its CPU baseline from.  Its standard workflow:
build a box of elements, set up the SEM operator, run a fixed number of
CG iterations on a manufactured right-hand side, and report the solve's
MFLOPS.  :class:`NekboneCase` reproduces that workflow on this library's
substrate, with the usual Nekbone element-count sweep helper.

FLOP accounting follows Nekbone's convention: the ``Ax`` kernel's
``(12(N+1)+15)`` FLOPs/DOF plus the CG vector operations
(2 axpy + 1 aypx + 3 reductions ~ 10 FLOPs per DOF per iteration, with
the gather-scatter additions counted once per interface DOF).
"""

from __future__ import annotations

import copy
import time
from dataclasses import InitVar, dataclass, field

import numpy as np

from repro.core.cost import flops_per_dof
from repro.sem.cg import CGResult, MixedCGResult, cg_solve, cg_solve_mixed
from repro.sem.element import ReferenceElement
from repro.sem.mesh import BoxMesh
from repro.sem.poisson import AxBackend, PoissonProblem, sine_manufactured
from repro.sem.operators import ax_local


@dataclass(frozen=True)
class NekboneReport:
    """Outcome of one Nekbone-style run.

    Attributes
    ----------
    iterations:
        CG iterations executed.
    flops_ax / flops_cg:
        Operator vs vector-update FLOPs (Nekbone reports both lumped).
    seconds:
        Wall time of the solve phase.
    mflops:
        Nekbone's headline metric (total FLOPs / time / 1e6).
    residual_norm:
        Final residual (Nekbone prints it for verification).
    """

    n: int
    num_elements: int
    iterations: int
    flops_ax: int
    flops_cg: int
    seconds: float
    residual_norm: float

    @property
    def total_flops(self) -> int:
        """Operator + vector FLOPs."""
        return self.flops_ax + self.flops_cg

    @property
    def mflops(self) -> float:
        """Nekbone's reported MFLOPS."""
        return self.total_flops / self.seconds / 1e6 if self.seconds > 0 else 0.0


#: CG vector-op FLOPs per global DOF per iteration (2 axpy, 1 aypx,
#: 2 dots + 1 norm): Nekbone's accounting.
CG_FLOPS_PER_DOF_PER_ITER: int = 10


@dataclass
class NekboneCase:
    """One Nekbone configuration (degree + element box).

    Parameters
    ----------
    n:
        Polynomial degree (Nekbone's ``lx1 - 1``).
    shape:
        Element box ``(ex, ey, ez)`` (Nekbone's processor-local brick).
    ax_backend:
        Operator backend — the vectorized CPU kernel by default, any
        registry name (``"matmul"`` for the BLAS hot path; see
        :mod:`repro.sem.kernels`), or the FPGA simulator via
        :meth:`repro.core.accel.SEMAccelerator.as_ax_backend`.
    threads:
        Element-block worker threads for blocked kernels, forwarded to
        the underlying :class:`~repro.sem.poisson.PoissonProblem`.
    precision:
        Default solve precision policy (``"fp64"`` or ``"mixed"``),
        forwarded to the underlying problem; ``"mixed"`` makes
        :meth:`run` use the fp32-inner refinement solver.
    """

    n: int
    shape: tuple[int, int, int]
    ax_backend: AxBackend | str = ax_local
    threads: int = 1
    precision: str = "fp64"
    # Spec/rebuild hand-off: a pre-built underlying problem (typically
    # one whose immutable state is attached from shared memory) adopted
    # instead of constructing a fresh one.
    _problem: InitVar["PoissonProblem | None"] = None
    problem: PoissonProblem = field(init=False)

    def __post_init__(self, _problem: "PoissonProblem | None" = None) -> None:
        if _problem is not None:
            self.problem = _problem
            return
        ref = ReferenceElement.from_degree(self.n)
        mesh = BoxMesh.build(ref, self.shape)
        self.problem = PoissonProblem(
            mesh, ax_backend=self.ax_backend, threads=self.threads,
            precision=self.precision,
        )

    @property
    def num_elements(self) -> int:
        """Total elements of the case."""
        return self.problem.mesh.num_elements

    # ------------------------------------------------------------------
    # Solver-facing protocol (delegated to the underlying problem) so a
    # NekboneCase can be handed directly to repro.serve.SolveService.
    @property
    def n_dofs(self) -> int:
        """Global DOF count of the underlying problem."""
        return self.problem.n_dofs

    @property
    def operator(self):
        """The global SPD operator callback (``problem.apply_A``)."""
        return self.problem.operator

    @property
    def operator32(self):
        """The fp32 twin operator callback (``problem.apply_A32``)."""
        return self.problem.operator32

    @property
    def workspace(self):
        """The underlying problem's unbatched workspace."""
        return self.problem.workspace

    def precond_diag(self):
        """Cached Jacobi diagonal of the underlying problem."""
        return self.problem.precond_diag()

    def batch_workspace(self, batch: int, dtype=np.float64):
        """Cached batched workspace of the underlying problem."""
        return self.problem.batch_workspace(batch, dtype=dtype)

    def solve(self, b, tol: float = 1e-10, maxiter: int = 1000,
              x0=None, precision: "str | None" = None):
        """Solve through the underlying problem (see
        :meth:`repro.sem.poisson.PoissonProblem.solve`)."""
        return self.problem.solve(
            b, tol=tol, maxiter=maxiter, x0=x0, precision=precision
        )

    def clone(self) -> "NekboneCase":
        """A solve replica delegating to ``problem.clone()``.

        The replica's :class:`~repro.sem.poisson.PoissonProblem` shares
        the source's immutable geometry/gather-scatter state but owns
        fresh workspaces, so a
        :class:`repro.serve.shard.ShardedSolveService` can solve through
        ``K`` Nekbone replicas concurrently.

        Returns
        -------
        NekboneCase
            An independent-solve replica of this case.
        """
        twin = copy.copy(self)
        twin.problem = self.problem.clone()
        return twin

    def spec(self):
        """A picklable :class:`~repro.sem.spec.ProblemSpec` (see
        :meth:`repro.sem.poisson.PoissonProblem.spec`)."""
        from repro.sem.spec import problem_spec

        return problem_spec(self)

    def export_shared(self):
        """Export immutable arrays for worker fleets (see
        :meth:`repro.sem.poisson.PoissonProblem.export_shared`)."""
        from repro.sem.spec import export_shared_problem

        return export_shared_problem(self)

    def run(
        self, iterations: int = 100, tol: float = 0.0
    ) -> "tuple[NekboneReport, CGResult | MixedCGResult]":
        """Execute the solve phase and report Nekbone-style metrics.

        ``tol = 0`` runs exactly ``iterations`` CG steps (Nekbone's fixed
        iteration count); a positive tolerance stops early.  A case built
        with ``precision="mixed"`` runs the fp32-inner refinement solver
        instead (``iterations`` caps each inner correction solve) and
        requires a positive ``tol`` — refinement is convergence-driven,
        so a fixed-iteration budget has no mixed analogue.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        mixed = self.problem.precision == "mixed"
        if mixed and tol <= 0:
            raise ValueError(
                "precision='mixed' needs tol > 0 (the refinement loop "
                "converges on the fp64 true residual)"
            )
        prob = self.problem
        _, forcing = sine_manufactured(prob.mesh.extent)
        b = prob.rhs_from_forcing(forcing)
        diag = prob.precond_diag()

        start = time.perf_counter()
        # The solve phase runs through the problem's workspaces: zero
        # field-sized allocations per CG iteration (Nekbone discipline).
        if mixed:
            result = cg_solve_mixed(
                prob.apply_A, prob.apply_A32, b, precond_diag=diag,
                tol=tol, maxiter=iterations, workspace=prob.workspace,
                workspace32=prob.batch_workspace(1, dtype=np.float32),
            )
        else:
            result = cg_solve(
                prob.apply_A, b, precond_diag=diag, tol=tol,
                maxiter=iterations, workspace=prob.workspace,
            )
        elapsed = time.perf_counter() - start

        # Operator applications: fp64 counts the initial residual plus
        # one per iteration; mixed counts the fp32 inner applies (one
        # per inner iteration) plus one fp64 true-residual per sweep.
        n_ax = (
            result.iterations + result.sweeps
            if mixed else result.iterations + 1
        )
        flops_ax = n_ax * flops_per_dof(self.n) * prob.mesh.num_local_dofs
        flops_cg = (
            result.iterations * CG_FLOPS_PER_DOF_PER_ITER * prob.n_dofs
        )
        report = NekboneReport(
            n=self.n,
            num_elements=self.num_elements,
            iterations=result.iterations,
            flops_ax=flops_ax,
            flops_cg=flops_cg,
            seconds=elapsed,
            residual_norm=result.residual_norm,
        )
        return report, result


def element_sweep(
    n: int,
    element_counts: tuple[int, ...] = (1, 8, 27, 64),
    iterations: int = 20,
    ax_backend: AxBackend | str = ax_local,
) -> list[NekboneReport]:
    """Nekbone's standard sweep: cubic boxes of growing element count.

    ``element_counts`` must be perfect cubes (Nekbone grows its brick
    cube by cube).
    """
    reports: list[NekboneReport] = []
    for count in element_counts:
        edge = round(count ** (1.0 / 3.0))
        if edge ** 3 != count:
            raise ValueError(f"element count {count} is not a perfect cube")
        case = NekboneCase(n, (edge, edge, edge), ax_backend=ax_backend)
        report, _ = case.run(iterations=iterations)
        reports.append(report)
    return reports
