"""The SEM reference element: nodes, weights and differentiation operator.

A :class:`ReferenceElement` bundles everything that depends only on the
polynomial degree ``N``: the 1-D GLL rule, the differentiation matrix and
the 3-D tensor-product weights.  Every other piece of the library (meshes,
operators, the accelerator) takes a reference element rather than a bare
degree so the quadrature data is computed once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from repro.sem.derivative import derivative_matrix
from repro.sem.quadrature import gll_points_and_weights


@dataclass(frozen=True)
class ReferenceElement:
    """Reference hexahedron ``[-1, 1]^3`` at polynomial degree ``N``.

    Attributes
    ----------
    degree:
        Polynomial degree ``N``; the element has ``N + 1`` GLL points per
        direction, i.e. ``(N+1)^3`` degrees of freedom (DOFs, the paper's
        unit of throughput).
    points:
        1-D GLL nodes, shape ``(N+1,)``.
    weights:
        1-D GLL weights, shape ``(N+1,)``.
    deriv:
        Differentiation matrix ``D``, shape ``(N+1, N+1)``.
    """

    degree: int
    points: NDArray[np.float64] = field(repr=False)
    weights: NDArray[np.float64] = field(repr=False)
    deriv: NDArray[np.float64] = field(repr=False)

    @classmethod
    def from_degree(cls, degree: int) -> "ReferenceElement":
        """Build the reference element for polynomial degree ``degree >= 1``."""
        if degree < 1:
            raise ValueError(f"polynomial degree must be >= 1, got {degree}")
        pts, wts = gll_points_and_weights(degree + 1)
        d = derivative_matrix(degree + 1)
        return cls(degree=degree, points=pts, weights=wts, deriv=d)

    @property
    def n_points(self) -> int:
        """GLL points per direction (``N + 1``, Listing 1's ``nx``)."""
        return self.degree + 1

    @property
    def dofs_per_element(self) -> int:
        """``(N+1)^3`` — nodal values per hexahedral element."""
        return self.n_points ** 3

    def weights_3d(self) -> NDArray[np.float64]:
        """Tensor-product quadrature weights ``w_i w_j w_k`` with shape
        ``(N+1, N+1, N+1)`` (index order ``[i, j, k]`` = (r, s, t))."""
        w = self.weights
        return w[:, None, None] * w[None, :, None] * w[None, None, :]

    def deriv_as(self, dtype: "np.dtype | type") -> NDArray:
        """The differentiation matrix ``D`` in ``dtype``.

        ``np.float64`` returns :attr:`deriv` itself; other dtypes (the
        mixed-precision fp32 path) get a read-only contiguous copy,
        computed once and cached on the element — the kernels call this
        per ``Ax`` application, so the cast must not be paid per call.
        """
        dtype = np.dtype(dtype)
        if dtype == self.deriv.dtype:
            return self.deriv
        cache: dict | None = getattr(self, "_deriv_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_deriv_cache", cache)
        d = cache.get(dtype.str)
        if d is None:
            d = np.ascontiguousarray(self.deriv.astype(dtype))
            d.setflags(write=False)
            cache[dtype.str] = d
        return d

    def __post_init__(self) -> None:
        n = self.degree + 1
        for name, arr, shape in (
            ("points", self.points, (n,)),
            ("weights", self.weights, (n,)),
            ("deriv", self.deriv, (n, n)),
        ):
            if np.asarray(arr).shape != shape:
                raise ValueError(f"{name} has shape {np.asarray(arr).shape}, expected {shape}")
